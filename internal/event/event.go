// Package event defines the REACH event model: primitive event
// specifications (classes of events) and event instances (occurrences
// carrying their parameters).
//
// REACH recognizes method-invocation events, state-change events,
// flow-control (transaction) events, temporal events — absolute,
// relative, periodic — and milestones; composite events are built from
// these by the algebra package (paper §3.1).
package event

import (
	"fmt"
	"time"
)

// Kind classifies events.
type Kind int

// Event kinds.
const (
	KindMethod Kind = iota + 1
	KindState
	KindTxn
	KindTemporal
	KindComposite
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindMethod:
		return "method"
	case KindState:
		return "state"
	case KindTxn:
		return "txn"
	case KindTemporal:
		return "temporal"
	case KindComposite:
		return "composite"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// When says whether a method event is raised before or after the
// method body executes.
type When int

// Method event positions.
const (
	Before When = iota + 1
	After
)

// String implements fmt.Stringer.
func (w When) String() string {
	if w == Before {
		return "before"
	}
	return "after"
}

// TxnPhase identifies flow-control (transaction) events.
type TxnPhase int

// Transaction event phases. BOT/EOT follow the paper's terminology:
// EOT is raised when the transaction finishes its work, before the
// commit decision — it is the hook at which deferred rules run.
const (
	BOT TxnPhase = iota + 1
	EOT
	Commit
	Abort
)

// String implements fmt.Stringer.
func (p TxnPhase) String() string {
	switch p {
	case BOT:
		return "BOT"
	case EOT:
		return "EOT"
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	}
	return fmt.Sprintf("TxnPhase(%d)", int(p))
}

// Spec is an event specification: a class of events that can be
// subscribed to. Its Key is the canonical identity under which ECA
// managers register rules and composers.
type Spec interface {
	Key() string
	Kind() Kind
}

// MethodSpec matches invocations of Class.Method, before or after the
// body runs. Explicit user signals are modelled as method events
// (paper §3.1).
type MethodSpec struct {
	Class  string
	Method string
	When   When
}

// Key implements Spec.
func (s MethodSpec) Key() string {
	return fmt.Sprintf("method:%s.%s:%s", s.Class, s.Method, s.When)
}

// Kind implements Spec.
func (MethodSpec) Kind() Kind { return KindMethod }

// StateSpec matches changes of attribute Attr on instances of Class —
// the value changes the paper could not trap in closed systems (§4).
type StateSpec struct {
	Class string
	Attr  string
}

// Key implements Spec.
func (s StateSpec) Key() string { return fmt.Sprintf("state:%s.%s", s.Class, s.Attr) }

// Kind implements Spec.
func (StateSpec) Kind() Kind { return KindState }

// TxnSpec matches flow-control events of one phase. A zero Class
// matches the phase for every transaction.
type TxnSpec struct {
	Phase TxnPhase
}

// Key implements Spec.
func (s TxnSpec) Key() string { return fmt.Sprintf("txn:%s", s.Phase) }

// Kind implements Spec.
func (TxnSpec) Kind() Kind { return KindTxn }

// TemporalKind discriminates temporal specifications.
type TemporalKind int

// Temporal specification kinds (paper §3.1: absolute or relative,
// periodic or aperiodic; milestones for time-constrained processing).
const (
	Absolute TemporalKind = iota + 1
	Relative
	Periodic
	MilestoneKind
)

// TemporalSpec matches points in time.
//
//   - Absolute: fires once at At.
//   - Relative: fires once Delay after the spec is armed.
//   - Periodic: fires every Period after arming.
//   - MilestoneKind: fires Delay after the transaction named by the
//     arming context begins, unless the milestone is reached first —
//     used to invoke contingency plans before a deadline (paper §3.1).
type TemporalSpec struct {
	Name     string // distinguishes otherwise-identical temporal specs
	Temporal TemporalKind
	At       time.Time
	Delay    time.Duration
	Period   time.Duration
}

// Key implements Spec.
func (s TemporalSpec) Key() string {
	switch s.Temporal {
	case Absolute:
		return fmt.Sprintf("time:abs:%s:%d", s.Name, s.At.UnixNano())
	case Relative:
		return fmt.Sprintf("time:rel:%s:%d", s.Name, s.Delay)
	case Periodic:
		return fmt.Sprintf("time:per:%s:%d", s.Name, s.Period)
	case MilestoneKind:
		return fmt.Sprintf("time:mil:%s:%d", s.Name, s.Delay)
	}
	return "time:invalid"
}

// Kind implements Spec.
func (TemporalSpec) Kind() Kind { return KindTemporal }

// CompositeSpec names a composite event defined by an algebra
// expression. The expression itself lives with the composite
// ECA-manager; specs only carry identity.
type CompositeSpec struct {
	Name string
}

// Key implements Spec.
func (s CompositeSpec) Key() string { return "composite:" + s.Name }

// Kind implements Spec.
func (CompositeSpec) Kind() Kind { return KindComposite }

// Instance is one event occurrence. ECA-managers know which parameters
// must travel with an event: the OID of the object acted upon, the
// transaction id, a timestamp, and attributes taken from the method
// invocation message (paper §6.3).
type Instance struct {
	SpecKey string
	Kind    Kind
	Time    time.Time
	Seq     uint64 // global occurrence order, assigned by the engine
	Txn     uint64 // originating transaction; 0 for temporal events
	OID     uint64 // receiver object; 0 when not applicable
	Class   string
	Method  string
	Args    []any
	Result  any
	Parts   []*Instance // constituents, for composite instances

	// Trace is the lifecycle trace the occurrence belongs to, minted
	// by the sentry dispatcher at detection time and inherited by
	// composite instances from their completing constituent. Zero
	// means untraced.
	Trace uint64

	// Origin is the live transaction handle the event was raised in
	// (when any). It lets the rule engine start immediate rules as
	// subtransactions of the exact transaction — possibly itself a
	// rule subtransaction — that raised the event. Layering keeps the
	// type opaque here.
	Origin any

	// Depth is the cascade depth: 0 for events raised by application
	// transactions, n+1 for events raised by a rule that was itself
	// fired at depth n. Composite instances inherit the deepest
	// constituent. The engine's cascade-depth guard bounds it.
	Depth int

	// retained marks a pooled instance as escaped to an asynchronous
	// consumer (deferred queue, detached executor, composite
	// composer); Recycle leaves it to the garbage collector. Written
	// only on the raising goroutine before Emit returns.
	retained bool
}

// String implements fmt.Stringer.
func (in *Instance) String() string {
	if in.Txn != 0 {
		return fmt.Sprintf("%s@%d[txn=%d]", in.SpecKey, in.Seq, in.Txn)
	}
	return fmt.Sprintf("%s@%d", in.SpecKey, in.Seq)
}

// Transactions returns the set of distinct transactions the instance's
// primitive constituents originate from. A purely temporal instance
// contributes nothing. This drives the event-category classification
// of §3.2 (single-transaction vs multi-transaction composites).
func (in *Instance) Transactions() map[uint64]bool {
	out := make(map[uint64]bool)
	in.collectTxns(out)
	return out
}

func (in *Instance) collectTxns(out map[uint64]bool) {
	if len(in.Parts) == 0 {
		if in.Txn != 0 {
			out[in.Txn] = true
		}
		return
	}
	for _, p := range in.Parts {
		p.collectTxns(out)
	}
}

// Flatten returns the primitive constituents of the instance in
// occurrence order (the instance itself when primitive).
func (in *Instance) Flatten() []*Instance {
	if len(in.Parts) == 0 {
		return []*Instance{in}
	}
	var out []*Instance
	for _, p := range in.Parts {
		out = append(out, p.Flatten()...)
	}
	return out
}
