package event

import "sync"

// pool recycles Instance allocations on the raise path. Every
// monitored method call and attribute write mints an Instance; under
// load that is the dominant allocation in the sentry→engine hot path,
// so the database gets instances from here and returns them once the
// dispatcher's Emit has gone the whole round trip (detection is
// synchronous — Consume returns before Emit does).
var pool = sync.Pool{New: func() any { return new(Instance) }}

// Get returns a cleared Instance, reusing a pooled one when
// available. The Args slice keeps its backing array, truncated to
// zero length, so steady-state raises do not reallocate it. Callers
// that pass through Emit must hand the instance to Recycle afterwards.
func Get() *Instance {
	in := pool.Get().(*Instance)
	args := in.Args
	if args != nil {
		args = args[:0]
	}
	*in = Instance{Args: args}
	return in
}

// Retain marks the instance as escaping the synchronous dispatch: a
// deferred queue, a detached executor, or a composite composer will
// read it after Emit returns, so Recycle must leave it to the garbage
// collector. The flag is a plain bool: every Retain happens on the
// raising goroutine before Emit returns, which happens-before the
// raiser's Recycle call — no other goroutine ever writes it.
func (in *Instance) Retain() { in.retained = true }

// Recycle returns an instance obtained from Get to the pool, unless a
// consumer retained it. Safe to call with instances that did not come
// from Get — they simply enter the pool.
func Recycle(in *Instance) {
	if in == nil || in.retained {
		return
	}
	args := in.Args
	if args != nil {
		args = args[:0]
	}
	*in = Instance{Args: args}
	pool.Put(in)
}
