package event

import (
	"testing"
	"time"
)

func TestSpecKeysDistinct(t *testing.T) {
	specs := []Spec{
		MethodSpec{Class: "River", Method: "updateWaterLevel", When: After},
		MethodSpec{Class: "River", Method: "updateWaterLevel", When: Before},
		MethodSpec{Class: "River", Method: "getWaterTemp", When: After},
		MethodSpec{Class: "Reactor", Method: "updateWaterLevel", When: After},
		StateSpec{Class: "River", Attr: "level"},
		StateSpec{Class: "River", Attr: "temp"},
		TxnSpec{Phase: BOT},
		TxnSpec{Phase: EOT},
		TxnSpec{Phase: Commit},
		TxnSpec{Phase: Abort},
		TemporalSpec{Temporal: Absolute, At: time.Unix(100, 0)},
		TemporalSpec{Temporal: Absolute, At: time.Unix(200, 0)},
		TemporalSpec{Temporal: Relative, Delay: time.Second},
		TemporalSpec{Temporal: Periodic, Period: time.Second},
		TemporalSpec{Temporal: MilestoneKind, Delay: time.Second},
		CompositeSpec{Name: "dow-drop"},
	}
	seen := map[string]Spec{}
	for _, s := range specs {
		k := s.Key()
		if k == "" {
			t.Fatalf("%+v has empty key", s)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision %q between %+v and %+v", k, prev, s)
		}
		seen[k] = s
	}
}

func TestSpecKinds(t *testing.T) {
	cases := []struct {
		spec Spec
		want Kind
	}{
		{MethodSpec{}, KindMethod},
		{StateSpec{}, KindState},
		{TxnSpec{}, KindTxn},
		{TemporalSpec{}, KindTemporal},
		{CompositeSpec{}, KindComposite},
	}
	for _, c := range cases {
		if got := c.spec.Kind(); got != c.want {
			t.Errorf("%T Kind() = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindMethod, KindState, KindTxn, KindTemporal, KindComposite} {
		if k.String() == "" {
			t.Errorf("Kind %d has empty String", k)
		}
	}
	for _, p := range []TxnPhase{BOT, EOT, Commit, Abort} {
		if p.String() == "" {
			t.Errorf("TxnPhase %d has empty String", p)
		}
	}
	if Before.String() != "before" || After.String() != "after" {
		t.Error("When strings wrong")
	}
}

func TestInstanceTransactionsPrimitive(t *testing.T) {
	in := &Instance{SpecKey: "method:A.m:after", Kind: KindMethod, Txn: 7}
	txns := in.Transactions()
	if len(txns) != 1 || !txns[7] {
		t.Fatalf("Transactions = %v, want {7}", txns)
	}
}

func TestInstanceTransactionsTemporal(t *testing.T) {
	in := &Instance{SpecKey: "time:abs:x:1", Kind: KindTemporal, Txn: 0}
	if txns := in.Transactions(); len(txns) != 0 {
		t.Fatalf("temporal Transactions = %v, want empty", txns)
	}
}

func TestInstanceTransactionsComposite(t *testing.T) {
	comp := &Instance{
		SpecKey: "composite:c",
		Kind:    KindComposite,
		Parts: []*Instance{
			{SpecKey: "method:A.m:after", Txn: 1},
			{SpecKey: "composite:inner", Parts: []*Instance{
				{SpecKey: "method:B.m:after", Txn: 2},
				{SpecKey: "time:abs:x:1", Txn: 0},
			}},
			{SpecKey: "method:A.m:after", Txn: 1},
		},
	}
	txns := comp.Transactions()
	if len(txns) != 2 || !txns[1] || !txns[2] {
		t.Fatalf("Transactions = %v, want {1,2}", txns)
	}
}

func TestInstanceFlatten(t *testing.T) {
	p1 := &Instance{SpecKey: "a", Seq: 1}
	p2 := &Instance{SpecKey: "b", Seq: 2}
	p3 := &Instance{SpecKey: "c", Seq: 3}
	comp := &Instance{SpecKey: "outer", Parts: []*Instance{
		p1,
		{SpecKey: "inner", Parts: []*Instance{p2, p3}},
	}}
	flat := comp.Flatten()
	if len(flat) != 3 || flat[0] != p1 || flat[1] != p2 || flat[2] != p3 {
		t.Fatalf("Flatten = %v", flat)
	}
	if single := p1.Flatten(); len(single) != 1 || single[0] != p1 {
		t.Fatal("primitive Flatten should return itself")
	}
}

func TestInstanceString(t *testing.T) {
	withTxn := &Instance{SpecKey: "method:A.m:after", Seq: 5, Txn: 3}
	if withTxn.String() == "" {
		t.Fatal("empty String")
	}
	noTxn := &Instance{SpecKey: "time:abs:x:1", Seq: 6}
	if noTxn.String() == withTxn.String() {
		t.Fatal("distinct instances print identically")
	}
}
