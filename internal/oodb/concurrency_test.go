package oodb

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/txn"
)

// TestConcurrentTransfers runs concurrent transactions transferring
// value between objects; 2PL must keep the total invariant.
func TestConcurrentTransfers(t *testing.T) {
	db := openMem(t)
	acct := NewClass("Account", Attr{Name: "balance", Type: TInt})
	if err := db.Dictionary().Register(acct); err != nil {
		t.Fatal(err)
	}
	const accounts = 6
	const workers = 8
	const rounds = 40

	setup := db.Begin()
	objs := make([]*Object, accounts)
	for i := range objs {
		objs[i], _ = db.NewObject(setup, "Account")
		db.Set(setup, objs[i], "balance", 100)
	}
	setup.Commit()

	var deadlocks atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				from := (w + r) % accounts
				to := (w + r + 1 + r%3) % accounts
				if from == to {
					continue
				}
				tx := db.Begin()
				fb, err := db.Get(tx, objs[from], "balance")
				if err != nil {
					deadlocks.Add(1)
					tx.Abort()
					continue
				}
				if err := db.Set(tx, objs[from], "balance", fb.(int64)-1); err != nil {
					deadlocks.Add(1)
					tx.Abort()
					continue
				}
				tb, err := db.Get(tx, objs[to], "balance")
				if err != nil {
					deadlocks.Add(1)
					tx.Abort()
					continue
				}
				if err := db.Set(tx, objs[to], "balance", tb.(int64)+1); err != nil {
					deadlocks.Add(1)
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}()
	}
	wg.Wait()
	check := db.Begin()
	total := int64(0)
	for _, obj := range objs {
		v, err := db.Get(check, obj, "balance")
		if err != nil {
			t.Fatal(err)
		}
		total += v.(int64)
	}
	check.Commit()
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d (isolation violated); deadlocks=%d",
			total, accounts*100, deadlocks.Load())
	}
}

// TestConcurrentPersistence commits concurrent transactions against a
// disk-backed store; after reopen all committed state must be there.
func TestConcurrentPersistence(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	registerRiver(t, db, false)
	const workers = 6
	var oids [workers]OID
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := db.Begin()
			obj, err := db.NewObject(tx, "River")
			if err != nil {
				tx.Abort()
				return
			}
			db.Set(tx, obj, "level", int64(w))
			if err := db.SetRoot(tx, string(rune('a'+w)), obj); err != nil {
				tx.Abort()
				return
			}
			if err := tx.Commit(); err == nil {
				oids[w] = obj.OID()
			}
		}()
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDisk(t, dir)
	defer db2.Close()
	registerRiver(t, db2, false)
	tx := db2.Begin()
	for w := 0; w < workers; w++ {
		if oids[w] == 0 {
			continue
		}
		obj, err := db2.Root(tx, string(rune('a'+w)))
		if err != nil {
			t.Fatalf("root %c lost: %v", 'a'+w, err)
		}
		if v, _ := db2.Get(tx, obj, "level"); v != int64(w) {
			t.Fatalf("root %c level = %v, want %d", 'a'+w, v, w)
		}
	}
	tx.Commit()
}

// TestDeadlockSurfacesToCaller verifies ErrDeadlock propagates
// through the object layer.
func TestDeadlockSurfacesToCaller(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, false)
	setup := db.Begin()
	a, _ := db.NewObject(setup, "River")
	b, _ := db.NewObject(setup, "River")
	setup.Commit()

	t1 := db.Begin()
	t2 := db.Begin()
	if err := db.Set(t1, a, "level", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Set(t2, b, "level", 2); err != nil {
		t.Fatal(err)
	}
	// Close the cycle from both sides; whichever request completes the
	// cycle is the victim and must see ErrDeadlock. Aborting the
	// victim unblocks the survivor.
	errs := make(chan error, 2)
	go func() {
		err := db.Set(t1, b, "level", 3)
		if errors.Is(err, txn.ErrDeadlock) {
			t1.Abort()
		}
		errs <- err
	}()
	go func() {
		err := db.Set(t2, a, "level", 4)
		if errors.Is(err, txn.ErrDeadlock) {
			t2.Abort()
		}
		errs <- err
	}()
	e1, e2 := <-errs, <-errs
	deadlocks := 0
	for _, err := range []error{e1, e2} {
		if errors.Is(err, txn.ErrDeadlock) {
			deadlocks++
		} else if err != nil && !errors.Is(err, txn.ErrNotActive) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 {
		t.Fatalf("deadlock victims = %d, want exactly 1 (errors: %v / %v)", deadlocks, e1, e2)
	}
	for _, tx := range []*txn.Txn{t1, t2} {
		if tx.Status() == txn.Active {
			tx.Commit()
		}
	}
}

// TestReadOnlyTransactionSkipsStorage ensures pure readers never touch
// the write path.
func TestReadOnlyTransactionSkipsStorage(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Set(tx, obj, "level", 9)
	db.SetRoot(tx, "r", obj)
	tx.Commit()
	before := db.StorageStats().WALNextLSN

	for i := 0; i < 5; i++ {
		r := db.Begin()
		got, err := db.Root(r, "r")
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := db.Get(r, got, "level"); v != int64(9) {
			t.Fatalf("level = %v", v)
		}
		if err := r.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if after := db.StorageStats().WALNextLSN; after != before {
		t.Fatalf("read-only transactions appended to the WAL: %d -> %d", before, after)
	}
	db.Close()
}
