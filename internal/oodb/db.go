package oodb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic" //lint:allow rawatomics OID allocator and sink pointer, not metrics

	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Sink consumes the primitive events the database raises: method
// invocation (before/after), state changes, and object lifecycle
// (create/delete, modelled as method events). The call is synchronous
// — for a Before event the sink's return is the "go-ahead" of Figure
// 2; an error vetoes the operation and is surfaced to the caller.
//
// Wants is the cheap pre-check a well-designed sentry performs before
// paying for event-object construction: when it returns false the
// database skips building the instance entirely, so the "useless
// overhead" of a sentry with no subscribers stays a key lookup
// (paper §6.2, [WSTR93]).
type Sink interface {
	Wants(specKey string) bool
	Emit(in *event.Instance) error
}

// Lifecycle pseudo-method names under which create and delete events
// are raised. Detecting deletion through the destructor is exactly
// what persistent C++ systems allow and O2-style persistence by
// reachability does not (paper §4).
const (
	MethodCreate = "__create__"
	MethodDelete = "__delete__"
)

// Options configure a database.
type Options struct {
	// Dir is the storage directory; empty selects a purely in-memory
	// database (no persistence across Open calls).
	Dir string
	// Storage tunes the storage manager when Dir is set.
	Storage storage.Options
	// Clock supplies timestamps for event instances; defaults to the
	// real clock.
	Clock clock.Clock
	// PersistByReachability makes commit persist every transient
	// object reachable via references from a persistent object.
	PersistByReachability bool
}

// DB is the database: dictionary, address spaces, transaction
// integration, and the persistence policy manager.
type DB struct {
	dict  *Dictionary
	txns  *txn.Manager
	store *storage.Store
	clk   clock.Clock
	opts  Options

	sink atomic.Value // Sink

	mu       sync.Mutex
	cache    map[OID]*Object // transient address space
	ridOf    map[OID]storage.RID
	roots    map[string]OID
	rootsRID storage.RID
	extents  map[string]map[OID]bool
	nextOID  uint64
}

// Errors returned by database operations.
var (
	ErrNoSuchObject = errors.New("oodb: no such object")
	ErrNoSuchRoot   = errors.New("oodb: no such root")
	ErrNoSuchAttr   = errors.New("oodb: no such attribute")
	ErrNoSuchMethod = errors.New("oodb: no such method")
	ErrDeleted      = errors.New("oodb: object deleted")
)

// Open opens a database with the given options.
func Open(opts Options) (*DB, error) {
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	db := &DB{
		dict:     NewDictionary(),
		txns:     txn.NewManager(),
		clk:      opts.Clock,
		opts:     opts,
		cache:    make(map[OID]*Object),
		ridOf:    make(map[OID]storage.RID),
		roots:    make(map[string]OID),
		rootsRID: storage.InvalidRID,
		extents:  make(map[string]map[OID]bool),
	}
	if opts.Dir != "" {
		st, err := storage.Open(opts.Dir, opts.Storage)
		if err != nil {
			return nil, err
		}
		db.store = st
		if err := db.loadCatalog(); err != nil {
			_ = st.Close() // opening failed; the close is best-effort cleanup
			return nil, err
		}
	}
	db.txns.SetDurability(db.flushCommit, db.flushAbort)
	return db, nil
}

// loadCatalog rebuilds the object table, roots and OID counter by
// scanning the store (the persistent address space).
func (db *DB) loadCatalog() error {
	return db.store.Scan(func(rid storage.RID, rec []byte) {
		if len(rec) == 0 {
			return
		}
		switch rec[0] {
		case recRoots:
			if roots, err := decodeRoots(rec); err == nil {
				db.roots = roots
				db.rootsRID = rid
			}
		case recObject:
			if oid, class, _, err := decodeObject(rec); err == nil {
				db.ridOf[oid] = rid
				ext := db.extents[class]
				if ext == nil {
					ext = make(map[OID]bool)
					db.extents[class] = ext
				}
				ext[oid] = true
				if uint64(oid) > db.nextOID {
					db.nextOID = uint64(oid)
				}
			}
		}
	})
}

// Dictionary exposes the data dictionary for class registration.
func (db *DB) Dictionary() *Dictionary { return db.dict }

// TxnManager exposes the transaction manager (the rule engine installs
// its listener there).
func (db *DB) TxnManager() *txn.Manager { return db.txns }

// Clock returns the database's time source.
func (db *DB) Clock() clock.Clock { return db.clk }

// SetSink installs the event sink (nil disables event delivery).
func (db *DB) SetSink(s Sink) { db.sink.Store(&s) }

func (db *DB) currentSink() Sink {
	v := db.sink.Load()
	if v == nil {
		return nil
	}
	return *(v.(*Sink))
}

// Begin starts a top-level transaction.
func (db *DB) Begin() *txn.Txn { return db.txns.Begin() }

// BeginAdmitted starts a top-level transaction through the admission
// gate: under overload it fails with the governor's typed
// ErrOverloaded instead of admitting work the system cannot finish.
func (db *DB) BeginAdmitted() (*txn.Txn, error) { return db.txns.BeginAdmitted() }

// NewObject creates a transient object of the named class inside t.
func (db *DB) NewObject(t *txn.Txn, className string) (*Object, error) {
	class, err := db.dict.Lookup(className)
	if err != nil {
		return nil, err
	}
	oid := OID(atomic.AddUint64(&db.nextOID, 1))
	values := make([]any, len(class.attrs))
	for i, a := range class.attrs {
		values[i] = a.Type.zero()
	}
	obj := &Object{oid: oid, class: class, values: values}
	if err := t.Lock(uint64(oid), txn.LockExclusive); err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.cache[oid] = obj
	ext := db.extents[className]
	if ext == nil {
		ext = make(map[OID]bool)
		db.extents[className] = ext
	}
	ext[oid] = true
	db.mu.Unlock()
	t.OnAbort(func() {
		db.mu.Lock()
		delete(db.cache, oid)
		if ext := db.extents[className]; ext != nil {
			delete(ext, oid)
		}
		db.mu.Unlock()
	})
	if class.Monitored {
		if err := db.emitMethod(t, obj, MethodCreate, nil, nil, event.After); err != nil {
			return nil, err
		}
	}
	return obj, nil
}

// Get reads attribute attr of obj under t (shared lock).
func (db *DB) Get(t *txn.Txn, obj *Object, attr string) (any, error) {
	idx := obj.class.AttrIndex(attr)
	if idx < 0 {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchAttr, obj.class.Name, attr)
	}
	if err := t.Lock(uint64(obj.oid), txn.LockShared); err != nil {
		return nil, err
	}
	if obj.Deleted() {
		return nil, fmt.Errorf("%w: %v", ErrDeleted, obj)
	}
	return obj.get(idx), nil
}

// Set writes attribute attr of obj under t (exclusive lock), raising a
// state-change event when the class is monitored.
func (db *DB) Set(t *txn.Txn, obj *Object, attr string, v any) error {
	idx := obj.class.AttrIndex(attr)
	if idx < 0 {
		return fmt.Errorf("%w: %s.%s", ErrNoSuchAttr, obj.class.Name, attr)
	}
	val, err := checkValue(obj.class.attrs[idx].Type, v)
	if err != nil {
		return err
	}
	if err := t.Lock(uint64(obj.oid), txn.LockExclusive); err != nil {
		return err
	}
	if obj.Deleted() {
		return fmt.Errorf("%w: %v", ErrDeleted, obj)
	}
	old := obj.get(idx)
	obj.set(idx, val)
	t.OnAbort(func() { obj.set(idx, old) })
	db.markDirty(t, obj)
	if obj.class.Monitored {
		sink := db.currentSink()
		if sink != nil {
			key := obj.class.stateKey(attr)
			if !sink.Wants(key) {
				return nil
			}
			in := event.Get()
			in.SpecKey = key
			in.Kind = event.KindState
			in.Time = db.clk.Now()
			in.Txn = t.Top().ID()
			in.OID = uint64(obj.oid)
			in.Class = obj.class.Name
			in.Args = append(in.Args, old, val)
			in.Origin = t
			err := sink.Emit(in)
			event.Recycle(in)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Invoke calls the named method on obj under t. For monitored classes
// the sentry raises before/after method events; the before event's
// return is the go-ahead (an error vetoes the call).
func (db *DB) Invoke(t *txn.Txn, obj *Object, method string, args ...any) (any, error) {
	impl, ok := obj.class.lookupMethod(method)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, obj.class.Name, method)
	}
	monitored := obj.class.Monitored
	if monitored {
		if err := db.emitMethod(t, obj, method, args, nil, event.Before); err != nil {
			return nil, err
		}
	}
	res, err := impl(&Ctx{DB: db, Txn: t}, obj, args)
	if err != nil {
		return nil, err
	}
	if monitored {
		if err := db.emitMethod(t, obj, method, args, res, event.After); err != nil {
			return res, err
		}
	}
	return res, nil
}

func (db *DB) emitMethod(t *txn.Txn, obj *Object, method string, args []any, result any, when event.When) error {
	sink := db.currentSink()
	if sink == nil {
		return nil
	}
	key := obj.class.methodKey(method, when)
	if !sink.Wants(key) {
		return nil
	}
	in := event.Get()
	in.SpecKey = key
	in.Kind = event.KindMethod
	in.Time = db.clk.Now()
	in.Txn = t.Top().ID()
	in.OID = uint64(obj.oid)
	in.Class = obj.class.Name
	in.Method = method
	// Copy, don't alias: the pooled buffer must never capture the
	// caller's backing array.
	in.Args = append(in.Args, args...)
	in.Result = result
	in.Origin = t
	err := sink.Emit(in)
	event.Recycle(in)
	return err
}

// Persist marks obj persistent; its state is written at top-level
// commit. On an in-memory database persistence is a no-op mark — the
// object survives for the process lifetime and can be named as a
// root, but nothing reaches stable storage.
func (db *DB) Persist(t *txn.Txn, obj *Object) error {
	if err := t.Lock(uint64(obj.oid), txn.LockExclusive); err != nil {
		return err
	}
	obj.mu.Lock()
	was := obj.persistent
	obj.persistent = true
	obj.mu.Unlock()
	if !was {
		t.OnAbort(func() {
			obj.mu.Lock()
			obj.persistent = false
			obj.mu.Unlock()
		})
	}
	db.markDirty(t, obj)
	return nil
}

// SetRoot names obj in the persistent roots directory and persists it.
func (db *DB) SetRoot(t *txn.Txn, name string, obj *Object) error {
	if err := db.Persist(t, obj); err != nil {
		return err
	}
	db.mu.Lock()
	old, had := db.roots[name]
	db.roots[name] = obj.oid
	db.mu.Unlock()
	t.OnAbort(func() {
		db.mu.Lock()
		if had {
			db.roots[name] = old
		} else {
			delete(db.roots, name)
		}
		db.mu.Unlock()
	})
	ws := db.writeSet(t)
	ws.mu.Lock()
	ws.rootsDirty = true
	ws.mu.Unlock()
	return nil
}

// Root fetches the object registered under name — the OpenOODB->fetch
// of the paper's condition-function example (§6.1).
func (db *DB) Root(t *txn.Txn, name string) (*Object, error) {
	db.mu.Lock()
	oid, ok := db.roots[name]
	db.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchRoot, name)
	}
	return db.Load(t, oid)
}

// RootNames lists the registered root names.
func (db *DB) RootNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.roots))
	for n := range db.roots {
		out = append(out, n)
	}
	return out
}

// Load returns the object with the given OID, faulting it in from the
// persistent address space if necessary (the sentried "object
// dereference" of §5).
func (db *DB) Load(t *txn.Txn, oid OID) (*Object, error) {
	if err := t.Lock(uint64(oid), txn.LockShared); err != nil {
		return nil, err
	}
	db.mu.Lock()
	if obj, ok := db.cache[oid]; ok {
		db.mu.Unlock()
		if obj.Deleted() {
			return nil, fmt.Errorf("%w: %v", ErrDeleted, obj)
		}
		return obj, nil
	}
	rid, ok := db.ridOf[oid]
	db.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchObject, oid)
	}
	rec, err := db.store.Get(rid)
	if err != nil {
		return nil, fmt.Errorf("oodb: load %v: %w", oid, err)
	}
	gotOID, className, values, err := decodeObject(rec)
	if err != nil {
		return nil, err
	}
	if gotOID != oid {
		return nil, fmt.Errorf("oodb: object table maps %v to record of %v", oid, gotOID)
	}
	class, err := db.dict.Lookup(className)
	if err != nil {
		return nil, fmt.Errorf("oodb: load %v: %w", oid, err)
	}
	// Schema growth: zero-fill missing trailing slots.
	for len(values) < len(class.attrs) {
		values = append(values, class.attrs[len(values)].Type.zero())
	}
	obj := &Object{oid: oid, class: class, values: values, persistent: true}
	db.mu.Lock()
	if existing, ok := db.cache[oid]; ok {
		obj = existing // lost the race; use the resident copy
	} else {
		db.cache[oid] = obj
	}
	db.mu.Unlock()
	return obj, nil
}

// Delete removes obj. The destructor event is raised before the
// deletion so deletion-triggered rules can see the dying object.
func (db *DB) Delete(t *txn.Txn, obj *Object) error {
	if obj.class.Monitored {
		if err := db.emitMethod(t, obj, MethodDelete, nil, nil, event.Before); err != nil {
			return err
		}
	}
	if err := t.Lock(uint64(obj.oid), txn.LockExclusive); err != nil {
		return err
	}
	obj.mu.Lock()
	if obj.deleted {
		obj.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrDeleted, obj)
	}
	obj.deleted = true
	obj.mu.Unlock()
	t.OnAbort(func() {
		obj.mu.Lock()
		obj.deleted = false
		obj.mu.Unlock()
	})
	ws := db.writeSet(t)
	ws.mu.Lock()
	ws.deleted[obj.oid] = obj
	delete(ws.dirty, obj.oid)
	ws.mu.Unlock()
	return nil
}

// Extent calls fn with the OID of every live object of the class
// (including subclass members when the dictionary says so is handled
// by the query layer).
func (db *DB) Extent(className string, fn func(OID)) {
	db.mu.Lock()
	oids := make([]OID, 0, len(db.extents[className]))
	for oid := range db.extents[className] {
		oids = append(oids, oid)
	}
	db.mu.Unlock()
	for _, oid := range oids {
		fn(oid)
	}
}

// writeSetKey keys the per-top-transaction write set.
type writeSetKey struct{}

type writeSet struct {
	mu         sync.Mutex
	dirty      map[OID]*Object
	deleted    map[OID]*Object
	rootsDirty bool
}

// writeSet returns (creating if needed) the write set of t's top-level
// transaction.
func (db *DB) writeSet(t *txn.Txn) *writeSet {
	top := t.Top()
	if ws, ok := top.Value(writeSetKey{}).(*writeSet); ok {
		return ws
	}
	ws := &writeSet{dirty: make(map[OID]*Object), deleted: make(map[OID]*Object)}
	top.SetValue(writeSetKey{}, ws)
	return ws
}

func (db *DB) markDirty(t *txn.Txn, obj *Object) {
	ws := db.writeSet(t)
	ws.mu.Lock()
	ws.dirty[obj.oid] = obj
	ws.mu.Unlock()
}

// flushCommit is the durability callback: it translates the top-level
// transaction's dirty persistent objects into storage records inside
// one storage transaction and commits it.
func (db *DB) flushCommit(t *txn.Txn) error {
	ws, ok := t.Value(writeSetKey{}).(*writeSet)
	if !ok {
		return nil // read-only transaction
	}
	if db.store == nil {
		db.applyInMemory(ws)
		return nil
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	tid := t.ID()
	begun := false
	begin := func() error {
		if begun {
			return nil
		}
		begun = true
		return db.store.Begin(tid)
	}

	if db.opts.PersistByReachability {
		db.persistReachableLocked(ws)
	}

	for oid, obj := range ws.deleted {
		db.mu.Lock()
		rid, had := db.ridOf[oid]
		db.mu.Unlock()
		if had {
			if err := begin(); err != nil {
				return err
			}
			if err := db.store.Delete(tid, rid); err != nil { //lint:allow lockdiscipline ws is txn-private during the durability callback and storage never re-enters oodb
				return err
			}
		}
		db.mu.Lock()
		delete(db.ridOf, oid)
		delete(db.cache, oid)
		if ext := db.extents[obj.class.Name]; ext != nil {
			delete(ext, oid)
		}
		db.mu.Unlock()
	}

	for oid, obj := range ws.dirty {
		if !obj.Persistent() || obj.Deleted() {
			continue
		}
		rec, err := encodeObject(oid, obj.class.Name, obj.snapshotValues())
		if err != nil {
			return err
		}
		if err := begin(); err != nil {
			return err
		}
		db.mu.Lock()
		rid, had := db.ridOf[oid]
		db.mu.Unlock()
		if had {
			newRID, err := db.store.Update(tid, rid, rec) //lint:allow lockdiscipline ws is txn-private during the durability callback and storage never re-enters oodb
			if err != nil {
				return err
			}
			if newRID != rid {
				db.mu.Lock()
				db.ridOf[oid] = newRID
				db.mu.Unlock()
			}
		} else {
			rid, err := db.store.Insert(tid, rec) //lint:allow lockdiscipline ws is txn-private during the durability callback and storage never re-enters oodb
			if err != nil {
				return err
			}
			db.mu.Lock()
			db.ridOf[oid] = rid
			db.mu.Unlock()
		}
	}

	if ws.rootsDirty {
		if err := begin(); err != nil {
			return err
		}
		db.mu.Lock()
		rec := encodeRoots(db.roots)
		rootsRID := db.rootsRID
		db.mu.Unlock()
		if rootsRID.Valid() {
			newRID, err := db.store.Update(tid, rootsRID, rec) //lint:allow lockdiscipline ws is txn-private during the durability callback and storage never re-enters oodb
			if err != nil {
				return err
			}
			db.mu.Lock()
			db.rootsRID = newRID
			db.mu.Unlock()
		} else {
			rid, err := db.store.Insert(tid, rec) //lint:allow lockdiscipline ws is txn-private during the durability callback and storage never re-enters oodb
			if err != nil {
				return err
			}
			db.mu.Lock()
			db.rootsRID = rid
			db.mu.Unlock()
		}
	}

	if begun {
		return db.store.Commit(tid) //lint:allow lockdiscipline ws is txn-private during the durability callback and storage never re-enters oodb
	}
	return nil
}

// applyInMemory performs the cache-side effects of a commit for a
// database without a store.
func (db *DB) applyInMemory(ws *writeSet) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for oid, obj := range ws.deleted {
		db.mu.Lock()
		delete(db.cache, oid)
		if ext := db.extents[obj.class.Name]; ext != nil {
			delete(ext, oid)
		}
		db.mu.Unlock()
	}
}

// persistReachableLocked extends the dirty set with every transient
// object reachable by reference from a persistent dirty object —
// persistence by reachability, the model O2 uses (§4).
func (db *DB) persistReachableLocked(ws *writeSet) {
	queue := make([]*Object, 0, len(ws.dirty))
	for _, obj := range ws.dirty {
		if obj.Persistent() {
			queue = append(queue, obj)
		}
	}
	seen := make(map[OID]bool)
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		if seen[obj.oid] {
			continue
		}
		seen[obj.oid] = true
		for i, a := range obj.class.attrs {
			if a.Type != TRef {
				continue
			}
			ref, _ := obj.get(i).(OID)
			if ref == 0 {
				continue
			}
			db.mu.Lock()
			target := db.cache[ref]
			db.mu.Unlock()
			if target == nil || target.Deleted() {
				continue
			}
			target.mu.Lock()
			fresh := !target.persistent
			target.persistent = true
			target.mu.Unlock()
			if fresh || ws.dirty[ref] == nil {
				ws.dirty[ref] = target
				queue = append(queue, target)
			}
		}
	}
}

// flushAbort is the durability callback for abort: the storage
// transaction (if one was begun by a failed flush) is rolled back.
func (db *DB) flushAbort(t *txn.Txn) error {
	if db.store == nil {
		return nil
	}
	reloc, err := db.store.Abort(t.ID())
	if err != nil {
		if errors.Is(err, storage.ErrUnknownTxn) {
			return nil // flush never began a storage transaction
		}
		return err
	}
	if len(reloc) > 0 {
		db.mu.Lock()
		for oid, rid := range db.ridOf {
			if nr, ok := reloc[rid]; ok {
				db.ridOf[oid] = nr
			}
		}
		if nr, ok := reloc[db.rootsRID]; ok {
			db.rootsRID = nr
		}
		db.mu.Unlock()
	}
	return nil
}

// EvictClean drops unpinned clean objects from the transient address
// space (used by tests to force faulting).
func (db *DB) EvictClean() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for oid, obj := range db.cache {
		if obj.Persistent() && !obj.Deleted() {
			delete(db.cache, oid)
		}
	}
}

// StorageStats reports storage-manager counters (zero Stats for an
// in-memory database).
func (db *DB) StorageStats() storage.Stats {
	if db.store == nil {
		return storage.Stats{}
	}
	return db.store.Stats()
}

// Checkpoint takes a fuzzy checkpoint: committed state is flushed
// concurrently with in-flight transactions and fully covered WAL
// segments are pruned. A no-op for an in-memory database.
func (db *DB) Checkpoint() error {
	if db.store == nil {
		return nil
	}
	return db.store.Checkpoint()
}

// CheckpointLag reports WAL bytes accumulated since the last
// completed checkpoint and the configured byte trigger (0, 0 for an
// in-memory database) — the storage backpressure signal the overload
// governor watches.
func (db *DB) CheckpointLag() (lag, trigger int64) {
	if db.store == nil {
		return 0, 0
	}
	return db.store.CheckpointLag()
}

// CheckpointHealth reports the store's durability health snapshot
// (zero value for an in-memory database).
func (db *DB) CheckpointHealth() storage.CheckpointHealth {
	if db.store == nil {
		return storage.CheckpointHealth{}
	}
	return db.store.CheckpointHealth()
}

// Close closes the database and its store.
func (db *DB) Close() error {
	if db.store == nil {
		return nil
	}
	return db.store.Close()
}

// Ctx is the invocation context handed to method bodies.
type Ctx struct {
	DB  *DB
	Txn *txn.Txn
}

// Get reads an attribute of obj.
func (c *Ctx) Get(obj *Object, attr string) (any, error) { return c.DB.Get(c.Txn, obj, attr) }

// Set writes an attribute of obj.
func (c *Ctx) Set(obj *Object, attr string, v any) error { return c.DB.Set(c.Txn, obj, attr, v) }

// Invoke calls a method on obj.
func (c *Ctx) Invoke(obj *Object, method string, args ...any) (any, error) {
	return c.DB.Invoke(c.Txn, obj, method, args...)
}

// Root fetches a named root object.
func (c *Ctx) Root(name string) (*Object, error) { return c.DB.Root(c.Txn, name) }

// New creates a transient object.
func (c *Ctx) New(class string) (*Object, error) { return c.DB.NewObject(c.Txn, class) }

// Load dereferences an OID.
func (c *Ctx) Load(oid OID) (*Object, error) { return c.DB.Load(c.Txn, oid) }

// GetInt reads an int attribute, with a zero fallback on type error.
func (c *Ctx) GetInt(obj *Object, attr string) (int64, error) {
	v, err := c.Get(obj, attr)
	if err != nil {
		return 0, err
	}
	x, _ := v.(int64)
	return x, nil
}

// GetFloat reads a float attribute.
func (c *Ctx) GetFloat(obj *Object, attr string) (float64, error) {
	v, err := c.Get(obj, attr)
	if err != nil {
		return 0, err
	}
	x, _ := v.(float64)
	return x, nil
}

// GetString reads a string attribute.
func (c *Ctx) GetString(obj *Object, attr string) (string, error) {
	v, err := c.Get(obj, attr)
	if err != nil {
		return "", err
	}
	x, _ := v.(string)
	return x, nil
}
