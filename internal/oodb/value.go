// Package oodb implements the object-oriented database core of the
// Open OODB substrate: the object model (classes, typed attributes,
// registered methods), the data dictionary (class registry and named
// roots), the transient and persistent address spaces with a binary
// translation layer, and the persistence policy manager that flushes
// dirty objects at top-level commit.
//
// Method invocation and attribute mutation are funnelled through the
// database so that sentries can trap them — the integration point the
// paper could not obtain from closed commercial systems (§4).
package oodb

import (
	"fmt"
	"time"
)

// OID identifies an object for its whole life, transient or
// persistent. OID 0 is never assigned.
type OID uint64

// String implements fmt.Stringer.
func (o OID) String() string { return fmt.Sprintf("oid:%d", uint64(o)) }

// AttrType is the declared type of an attribute.
type AttrType int

// Attribute types.
const (
	TInt AttrType = iota + 1
	TFloat
	TString
	TBool
	TRef
	TTime
	TBytes
	TList
)

// String implements fmt.Stringer.
func (t AttrType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TBool:
		return "bool"
	case TRef:
		return "ref"
	case TTime:
		return "time"
	case TBytes:
		return "bytes"
	case TList:
		return "list"
	}
	return fmt.Sprintf("AttrType(%d)", int(t))
}

// zero returns the zero value for the attribute type.
func (t AttrType) zero() any {
	switch t {
	case TInt:
		return int64(0)
	case TFloat:
		return float64(0)
	case TString:
		return ""
	case TBool:
		return false
	case TRef:
		return OID(0)
	case TTime:
		return time.Time{}
	case TBytes:
		return []byte(nil)
	case TList:
		return []any(nil)
	}
	return nil
}

// checkValue verifies (and mildly coerces) v against the attribute
// type, returning the canonical representation.
func checkValue(t AttrType, v any) (any, error) {
	switch t {
	case TInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case uint64:
			return int64(x), nil
		}
	case TFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		}
	case TString:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case TBool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case TRef:
		switch x := v.(type) {
		case OID:
			return x, nil
		case *Object:
			if x == nil {
				return OID(0), nil
			}
			return x.OID(), nil
		case nil:
			return OID(0), nil
		case uint64:
			return OID(x), nil
		}
	case TTime:
		if x, ok := v.(time.Time); ok {
			return x, nil
		}
	case TBytes:
		if x, ok := v.([]byte); ok {
			return append([]byte(nil), x...), nil
		}
	case TList:
		if x, ok := v.([]any); ok {
			return x, nil
		}
	}
	return nil, fmt.Errorf("oodb: value %v (%T) not assignable to %v attribute", v, v, t)
}
