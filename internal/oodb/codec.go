package oodb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// The translation layer converts between in-memory objects and the
// uninterpreted records the storage manager holds — the Open OODB
// "translation" support module (§5, Figure 1).
//
// Record layout (little endian):
//
//	u8  recordTag (object | roots)
//	object: u64 oid | str class | u16 nvalues | nvalues × value
//	roots:  u16 n | n × (str name | u64 oid)
//	value:  u8 valueTag | payload
//	str:    u16 len | bytes
const (
	recObject byte = 0
	recRoots  byte = 1
)

const (
	vNil byte = iota
	vInt
	vFloat
	vString
	vBool
	vRef
	vTime
	vBytes
	vList
)

var errCorruptRecord = errors.New("oodb: corrupt record")

// encodeObject translates an object snapshot into a storage record.
func encodeObject(oid OID, class string, values []any) ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, recObject)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(oid))
	buf = appendString(buf, class)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(values)))
	var err error
	for _, v := range values {
		buf, err = appendValue(buf, v)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// decodeObject translates a storage record back into (oid, class,
// values). The class's declared attribute count governs slot layout;
// missing trailing slots (schema grew) are zero-filled by the caller.
func decodeObject(rec []byte) (OID, string, []any, error) {
	if len(rec) < 1 || rec[0] != recObject {
		return 0, "", nil, errCorruptRecord
	}
	p := rec[1:]
	if len(p) < 8 {
		return 0, "", nil, errCorruptRecord
	}
	oid := OID(binary.LittleEndian.Uint64(p))
	p = p[8:]
	class, p, err := readString(p)
	if err != nil {
		return 0, "", nil, err
	}
	if len(p) < 2 {
		return 0, "", nil, errCorruptRecord
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	values := make([]any, n)
	for i := 0; i < n; i++ {
		values[i], p, err = readValue(p)
		if err != nil {
			return 0, "", nil, err
		}
	}
	return oid, class, values, nil
}

// encodeRoots translates the named-roots directory.
func encodeRoots(roots map[string]OID) []byte {
	buf := make([]byte, 0, 16+len(roots)*16)
	buf = append(buf, recRoots)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(roots)))
	for name, oid := range roots {
		buf = appendString(buf, name)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(oid))
	}
	return buf
}

// decodeRoots translates a roots record.
func decodeRoots(rec []byte) (map[string]OID, error) {
	if len(rec) < 3 || rec[0] != recRoots {
		return nil, errCorruptRecord
	}
	p := rec[1:]
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	out := make(map[string]OID, n)
	for i := 0; i < n; i++ {
		var name string
		var err error
		name, p, err = readString(p)
		if err != nil {
			return nil, err
		}
		if len(p) < 8 {
			return nil, errCorruptRecord
		}
		out[name] = OID(binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	return out, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func readString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, errCorruptRecord
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return "", nil, errCorruptRecord
	}
	return string(p[:n]), p[n:], nil
}

func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, vNil), nil
	case int64:
		buf = append(buf, vInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(x)), nil
	case float64:
		buf = append(buf, vFloat)
		return binary.LittleEndian.AppendUint64(buf, uint64(floatBits(x))), nil
	case string:
		buf = append(buf, vString)
		return appendString(buf, x), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(buf, vBool, b), nil
	case OID:
		buf = append(buf, vRef)
		return binary.LittleEndian.AppendUint64(buf, uint64(x)), nil
	case time.Time:
		buf = append(buf, vTime)
		return binary.LittleEndian.AppendUint64(buf, uint64(x.UnixNano())), nil
	case []byte:
		buf = append(buf, vBytes)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...), nil
	case []any:
		buf = append(buf, vList)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(x)))
		var err error
		for _, e := range x {
			buf, err = appendValue(buf, e)
			if err != nil {
				return nil, err
			}
		}
		return buf, nil
	}
	return nil, fmt.Errorf("oodb: cannot encode value of type %T", v)
}

func readValue(p []byte) (any, []byte, error) {
	if len(p) < 1 {
		return nil, nil, errCorruptRecord
	}
	tag := p[0]
	p = p[1:]
	switch tag {
	case vNil:
		return nil, p, nil
	case vInt:
		if len(p) < 8 {
			return nil, nil, errCorruptRecord
		}
		return int64(binary.LittleEndian.Uint64(p)), p[8:], nil
	case vFloat:
		if len(p) < 8 {
			return nil, nil, errCorruptRecord
		}
		return bitsFloat(binary.LittleEndian.Uint64(p)), p[8:], nil
	case vString:
		s, rest, err := readString(p)
		return s, rest, err
	case vBool:
		if len(p) < 1 {
			return nil, nil, errCorruptRecord
		}
		return p[0] == 1, p[1:], nil
	case vRef:
		if len(p) < 8 {
			return nil, nil, errCorruptRecord
		}
		return OID(binary.LittleEndian.Uint64(p)), p[8:], nil
	case vTime:
		if len(p) < 8 {
			return nil, nil, errCorruptRecord
		}
		return time.Unix(0, int64(binary.LittleEndian.Uint64(p))).UTC(), p[8:], nil
	case vBytes:
		if len(p) < 4 {
			return nil, nil, errCorruptRecord
		}
		n := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if len(p) < n {
			return nil, nil, errCorruptRecord
		}
		return append([]byte(nil), p[:n]...), p[n:], nil
	case vList:
		if len(p) < 2 {
			return nil, nil, errCorruptRecord
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		out := make([]any, n)
		var err error
		for i := 0; i < n; i++ {
			out[i], p, err = readValue(p)
			if err != nil {
				return nil, nil, err
			}
		}
		return out, p, nil
	}
	return nil, nil, fmt.Errorf("%w: unknown value tag %d", errCorruptRecord, tag)
}
