package oodb

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestCodecRoundTripAllTypes(t *testing.T) {
	values := []any{
		int64(-42),
		float64(3.14159),
		"hello, Welt",
		true,
		false,
		OID(777),
		time.Date(1995, 3, 6, 12, 0, 0, 0, time.UTC),
		[]byte{0x01, 0x02, 0xFF},
		nil,
		[]any{int64(1), "two", float64(3)},
	}
	rec, err := encodeObject(5, "Mixed", values)
	if err != nil {
		t.Fatal(err)
	}
	oid, class, got, err := decodeObject(rec)
	if err != nil {
		t.Fatal(err)
	}
	if oid != 5 || class != "Mixed" {
		t.Fatalf("oid/class = %v/%v", oid, class)
	}
	if len(got) != len(values) {
		t.Fatalf("decoded %d values, want %d", len(got), len(values))
	}
	for i, want := range values {
		if w, ok := want.(time.Time); ok {
			if !got[i].(time.Time).Equal(w) {
				t.Fatalf("value %d = %v, want %v", i, got[i], w)
			}
			continue
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("value %d = %#v, want %#v", i, got[i], want)
		}
	}
}

func TestCodecFloatSpecials(t *testing.T) {
	values := []any{math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	rec, err := encodeObject(1, "F", values)
	if err != nil {
		t.Fatal(err)
	}
	_, _, got, err := decodeObject(rec)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range values {
		if got[i] != want {
			t.Fatalf("float %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestCodecUnsupportedType(t *testing.T) {
	if _, err := encodeObject(1, "X", []any{struct{}{}}); err == nil {
		t.Fatal("encoding unsupported type succeeded")
	}
}

func TestCodecCorruptRecords(t *testing.T) {
	rec, _ := encodeObject(9, "C", []any{int64(1), "abc"})
	for cut := 0; cut < len(rec); cut++ {
		if _, _, _, err := decodeObject(rec[:cut]); err == nil {
			t.Fatalf("decoding truncation at %d succeeded", cut)
		}
	}
	bad := append([]byte(nil), rec...)
	bad[0] = 99
	if _, _, _, err := decodeObject(bad); err == nil {
		t.Fatal("decoding bad record tag succeeded")
	}
}

func TestRootsRoundTrip(t *testing.T) {
	roots := map[string]OID{"a": 1, "block-A": 9000, "": 3}
	rec := encodeRoots(roots)
	got, err := decodeRoots(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, roots) {
		t.Fatalf("roots = %v, want %v", got, roots)
	}
	if _, err := decodeRoots(rec[:2]); err == nil {
		t.Fatal("decoding truncated roots succeeded")
	}
}

// Property: arbitrary (int,string,bytes,bool,float) tuples round-trip.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(i int64, s string, b []byte, fl float64, ok bool) bool {
		if math.IsNaN(fl) {
			fl = 0 // NaN != NaN; normalize
		}
		values := []any{i, s, append([]byte(nil), b...), fl, ok}
		rec, err := encodeObject(OID(1), "P", values)
		if err != nil {
			return false
		}
		_, _, got, err := decodeObject(rec)
		if err != nil || len(got) != 5 {
			return false
		}
		return got[0] == i && got[1] == s && bytes.Equal(got[2].([]byte), b) &&
			got[3] == fl && got[4] == ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckValueCoercions(t *testing.T) {
	cases := []struct {
		typ  AttrType
		in   any
		want any
	}{
		{TInt, 5, int64(5)},
		{TInt, int32(5), int64(5)},
		{TInt, uint64(5), int64(5)},
		{TFloat, 5, float64(5)},
		{TFloat, float32(2), float64(2)},
		{TRef, nil, OID(0)},
		{TRef, uint64(3), OID(3)},
	}
	for _, c := range cases {
		got, err := checkValue(c.typ, c.in)
		if err != nil || got != c.want {
			t.Errorf("checkValue(%v, %v) = %v, %v; want %v", c.typ, c.in, got, err, c.want)
		}
	}
	if _, err := checkValue(TInt, "x"); err == nil {
		t.Error("checkValue(TInt, string) succeeded")
	}
	if _, err := checkValue(TString, 7); err == nil {
		t.Error("checkValue(TString, int) succeeded")
	}
	if _, err := checkValue(TTime, 7); err == nil {
		t.Error("checkValue(TTime, int) succeeded")
	}
}

func TestAttrTypeStringsAndZeros(t *testing.T) {
	for _, typ := range []AttrType{TInt, TFloat, TString, TBool, TRef, TTime, TBytes, TList} {
		if typ.String() == "" {
			t.Errorf("AttrType %d empty String", typ)
		}
		z := typ.zero()
		if typ != TBytes && typ != TList && z == nil {
			t.Errorf("AttrType %v zero = nil", typ)
		}
		if _, err := checkValue(typ, z); err != nil {
			t.Errorf("zero of %v not assignable to itself: %v", typ, err)
		}
	}
}
