package oodb

import (
	"fmt"
	"sync"
)

// Object is one instance of a class. Attribute slots follow the
// class's declaration order. Objects are transient until persisted
// (explicitly or by reachability from a persistent object at commit).
//
// Isolation is provided by the lock manager in the database layer:
// conflicting access takes object-granular locks; the object's own
// mutex only protects structural integrity.
type Object struct {
	oid   OID
	class *Class

	mu         sync.RWMutex
	values     []any
	persistent bool
	deleted    bool
}

// OID returns the object identifier.
func (o *Object) OID() OID { return o.oid }

// Class returns the object's class descriptor.
func (o *Object) Class() *Class { return o.class }

// Persistent reports whether the object is (or will be at commit)
// stored durably.
func (o *Object) Persistent() bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.persistent
}

// Deleted reports whether the object has been deleted.
func (o *Object) Deleted() bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.deleted
}

// get reads an attribute slot without lock-manager involvement.
func (o *Object) get(idx int) any {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.values[idx]
}

// set writes an attribute slot without lock-manager involvement.
func (o *Object) set(idx int, v any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.values[idx] = v
}

// snapshotValues copies the attribute slots (for translation).
func (o *Object) snapshotValues() []any {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return append([]any(nil), o.values...)
}

// String implements fmt.Stringer.
func (o *Object) String() string {
	return fmt.Sprintf("%s#%d", o.class.Name, o.oid)
}
