package oodb

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/event"
)

// registerRiver registers the paper's River class on db.
func registerRiver(t *testing.T, db *DB, monitored bool) *Class {
	t.Helper()
	river := NewClass("River",
		Attr{Name: "name", Type: TString},
		Attr{Name: "level", Type: TInt},
		Attr{Name: "temp", Type: TFloat},
	)
	river.Monitored = monitored
	river.Method("updateWaterLevel", func(ctx *Ctx, self *Object, args []any) (any, error) {
		return nil, ctx.Set(self, "level", args[0])
	})
	river.Method("getWaterTemp", func(ctx *Ctx, self *Object, args []any) (any, error) {
		return ctx.GetFloat(self, "temp")
	})
	if err := db.Dictionary().Register(river); err != nil {
		t.Fatal(err)
	}
	return river
}

func openMem(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func openDisk(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewObjectZeroValues(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, err := db.NewObject(tx, "River")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Get(tx, obj, "level"); v != int64(0) {
		t.Fatalf("zero level = %v", v)
	}
	if v, _ := db.Get(tx, obj, "name"); v != "" {
		t.Fatalf("zero name = %v", v)
	}
	if obj.Persistent() {
		t.Fatal("new object should be transient")
	}
	tx.Commit()
}

func TestSetGetTyped(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	if err := db.Set(tx, obj, "level", 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Get(tx, obj, "level"); v != int64(42) {
		t.Fatalf("level = %v, want 42", v)
	}
	if err := db.Set(tx, obj, "level", "not an int"); err == nil {
		t.Fatal("type error not detected")
	}
	if err := db.Set(tx, obj, "nonexistent", 1); !errors.Is(err, ErrNoSuchAttr) {
		t.Fatalf("err = %v, want ErrNoSuchAttr", err)
	}
	if _, err := db.Get(tx, obj, "nonexistent"); !errors.Is(err, ErrNoSuchAttr) {
		t.Fatalf("err = %v, want ErrNoSuchAttr", err)
	}
	tx.Commit()
}

func TestInvokeMethod(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	if _, err := db.Invoke(tx, obj, "updateWaterLevel", int64(35)); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Get(tx, obj, "level"); v != int64(35) {
		t.Fatalf("level = %v, want 35", v)
	}
	if _, err := db.Invoke(tx, obj, "noSuchMethod"); !errors.Is(err, ErrNoSuchMethod) {
		t.Fatalf("err = %v, want ErrNoSuchMethod", err)
	}
	tx.Commit()
}

func TestAbortRestoresAttributeValues(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Set(tx, obj, "level", 10)
	tx.Commit()

	tx2 := db.Begin()
	db.Set(tx2, obj, "level", 99)
	db.Set(tx2, obj, "level", 100)
	tx2.Abort()
	tx3 := db.Begin()
	if v, _ := db.Get(tx3, obj, "level"); v != int64(10) {
		t.Fatalf("level after abort = %v, want 10", v)
	}
	tx3.Commit()
}

func TestAbortRemovesCreatedObjects(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	oid := obj.OID()
	tx.Abort()
	tx2 := db.Begin()
	if _, err := db.Load(tx2, oid); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("Load of rolled-back object err = %v, want ErrNoSuchObject", err)
	}
	found := false
	db.Extent("River", func(OID) { found = true })
	if found {
		t.Fatal("extent still contains rolled-back object")
	}
	tx2.Commit()
}

func TestPersistRootFetch(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Set(tx, obj, "name", "Rhine")
	db.Set(tx, obj, "level", 37)
	if err := db.SetRoot(tx, "cooling-river", obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDisk(t, dir)
	defer db2.Close()
	registerRiver(t, db2, false)
	tx2 := db2.Begin()
	got, err := db2.Root(tx2, "cooling-river")
	if err != nil {
		t.Fatal(err)
	}
	if got.OID() != obj.OID() {
		t.Fatalf("reopened root OID = %v, want %v", got.OID(), obj.OID())
	}
	if v, _ := db2.Get(tx2, got, "name"); v != "Rhine" {
		t.Fatalf("name = %v, want Rhine", v)
	}
	if v, _ := db2.Get(tx2, got, "level"); v != int64(37) {
		t.Fatalf("level = %v, want 37", v)
	}
	tx2.Commit()
}

func TestRootMissing(t *testing.T) {
	db := openMem(t)
	tx := db.Begin()
	if _, err := db.Root(tx, "nope"); !errors.Is(err, ErrNoSuchRoot) {
		t.Fatalf("err = %v, want ErrNoSuchRoot", err)
	}
	tx.Commit()
}

func TestUpdatePersistedObject(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Set(tx, obj, "level", 1)
	db.SetRoot(tx, "r", obj)
	tx.Commit()

	tx2 := db.Begin()
	db.Set(tx2, obj, "level", 2)
	tx2.Commit()
	db.Close()

	db2 := openDisk(t, dir)
	defer db2.Close()
	registerRiver(t, db2, false)
	tx3 := db2.Begin()
	got, _ := db2.Root(tx3, "r")
	if v, _ := db2.Get(tx3, got, "level"); v != int64(2) {
		t.Fatalf("level = %v, want 2", v)
	}
	tx3.Commit()
}

func TestAbortedTxnNotPersisted(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Set(tx, obj, "level", 5)
	db.SetRoot(tx, "r", obj)
	tx.Commit()

	tx2 := db.Begin()
	db.Set(tx2, obj, "level", 500)
	tx2.Abort()
	db.Close()

	db2 := openDisk(t, dir)
	defer db2.Close()
	registerRiver(t, db2, false)
	tx3 := db2.Begin()
	got, _ := db2.Root(tx3, "r")
	if v, _ := db2.Get(tx3, got, "level"); v != int64(5) {
		t.Fatalf("level = %v, want 5", v)
	}
	tx3.Commit()
}

func TestDeleteObject(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.SetRoot(tx, "r", obj)
	tx.Commit()
	oid := obj.OID()

	tx2 := db.Begin()
	if err := db.Delete(tx2, obj); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(tx2, obj, "level"); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Get on deleted err = %v, want ErrDeleted", err)
	}
	tx2.Commit()
	db.Close()

	db2 := openDisk(t, dir)
	defer db2.Close()
	registerRiver(t, db2, false)
	tx3 := db2.Begin()
	if _, err := db2.Load(tx3, oid); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("Load of deleted err = %v, want ErrNoSuchObject", err)
	}
	tx3.Commit()
}

func TestDeleteAbortRestores(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Set(tx, obj, "level", 7)
	tx.Commit()

	tx2 := db.Begin()
	db.Delete(tx2, obj)
	tx2.Abort()
	tx3 := db.Begin()
	if v, err := db.Get(tx3, obj, "level"); err != nil || v != int64(7) {
		t.Fatalf("after aborted delete: %v, %v", v, err)
	}
	tx3.Commit()
}

func TestFaultingAfterEviction(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, dir)
	registerRiver(t, db, false)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Set(tx, obj, "name", "Main")
	db.SetRoot(tx, "r", obj)
	tx.Commit()

	db.EvictClean()
	tx2 := db.Begin()
	got, err := db.Root(tx2, "r")
	if err != nil {
		t.Fatal(err)
	}
	if got == obj {
		t.Fatal("eviction did not drop the resident copy")
	}
	if v, _ := db.Get(tx2, got, "name"); v != "Main" {
		t.Fatalf("faulted name = %v", v)
	}
	tx2.Commit()
	db.Close()
}

func TestPersistenceByReachability(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, PersistByReachability: true})
	if err != nil {
		t.Fatal(err)
	}
	node := NewClass("Node",
		Attr{Name: "val", Type: TInt},
		Attr{Name: "next", Type: TRef},
	)
	if err := db.Dictionary().Register(node); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	a, _ := db.NewObject(tx, "Node")
	b, _ := db.NewObject(tx, "Node")
	c, _ := db.NewObject(tx, "Node")
	db.Set(tx, a, "val", 1)
	db.Set(tx, b, "val", 2)
	db.Set(tx, c, "val", 3)
	db.Set(tx, a, "next", b)
	db.Set(tx, b, "next", c)
	db.SetRoot(tx, "head", a) // only a persisted explicitly
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(Options{Dir: dir, PersistByReachability: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.Dictionary().Register(NewClass("Node",
		Attr{Name: "val", Type: TInt},
		Attr{Name: "next", Type: TRef},
	))
	tx2 := db2.Begin()
	head, err := db2.Root(tx2, "head")
	if err != nil {
		t.Fatal(err)
	}
	sum := int64(0)
	for cur := head; cur != nil; {
		v, _ := db2.Get(tx2, cur, "val")
		sum += v.(int64)
		ref, _ := db2.Get(tx2, cur, "next")
		if ref.(OID) == 0 {
			break
		}
		next, err := db2.Load(tx2, ref.(OID))
		if err != nil {
			t.Fatalf("chain broken at %v: %v", ref, err)
		}
		cur = next
	}
	if sum != 6 {
		t.Fatalf("reachable chain sum = %d, want 6", sum)
	}
	tx2.Commit()
}

type captureSink struct {
	events []*event.Instance
	veto   map[string]bool
	wants  func(string) bool // nil means "wants everything"
}

func (s *captureSink) Wants(key string) bool {
	if s.wants == nil {
		return true
	}
	return s.wants(key)
}

func (s *captureSink) Emit(in *event.Instance) error {
	in.Retain() // stored past Emit; keep it out of the pool
	s.events = append(s.events, in)
	if s.veto[in.SpecKey] {
		return fmt.Errorf("vetoed %s", in.SpecKey)
	}
	return nil
}

func TestMonitoredClassEmitsMethodEvents(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, true)
	sink := &captureSink{}
	db.SetSink(sink)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	if _, err := db.Invoke(tx, obj, "updateWaterLevel", int64(30)); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	var keys []string
	for _, e := range sink.events {
		keys = append(keys, e.SpecKey)
	}
	wantBefore := event.MethodSpec{Class: "River", Method: "updateWaterLevel", When: event.Before}.Key()
	wantAfter := event.MethodSpec{Class: "River", Method: "updateWaterLevel", When: event.After}.Key()
	var sawBefore, sawAfter, sawState, sawCreate bool
	for _, k := range keys {
		switch k {
		case wantBefore:
			sawBefore = true
		case wantAfter:
			sawAfter = true
		case event.StateSpec{Class: "River", Attr: "level"}.Key():
			sawState = true
		case event.MethodSpec{Class: "River", Method: MethodCreate, When: event.After}.Key():
			sawCreate = true
		}
	}
	if !sawBefore || !sawAfter || !sawState || !sawCreate {
		t.Fatalf("events %v missing before/after/state/create", keys)
	}
}

func TestUnmonitoredClassEmitsNothing(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, false)
	sink := &captureSink{}
	db.SetSink(sink)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Invoke(tx, obj, "updateWaterLevel", int64(30))
	tx.Commit()
	if len(sink.events) != 0 {
		t.Fatalf("unmonitored class produced %d events", len(sink.events))
	}
}

func TestBeforeEventVetoBlocksInvocation(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, true)
	key := event.MethodSpec{Class: "River", Method: "updateWaterLevel", When: event.Before}.Key()
	sink := &captureSink{veto: map[string]bool{key: true}}
	db.SetSink(sink)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Set(tx, obj, "level", 5)
	if _, err := db.Invoke(tx, obj, "updateWaterLevel", int64(30)); err == nil {
		t.Fatal("vetoed invocation succeeded")
	}
	if v, _ := db.Get(tx, obj, "level"); v != int64(5) {
		t.Fatalf("vetoed method still ran: level = %v", v)
	}
	tx.Commit()
}

func TestMethodEventCarriesParameters(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, true)
	sink := &captureSink{}
	db.SetSink(sink)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Invoke(tx, obj, "updateWaterLevel", int64(33))
	for _, e := range sink.events {
		if e.Kind == event.KindMethod && e.Method == "updateWaterLevel" {
			if e.OID != uint64(obj.OID()) {
				t.Fatalf("event OID = %d, want %d", e.OID, obj.OID())
			}
			if e.Txn != tx.ID() {
				t.Fatalf("event Txn = %d, want %d", e.Txn, tx.ID())
			}
			if len(e.Args) != 1 || e.Args[0] != int64(33) {
				t.Fatalf("event Args = %v", e.Args)
			}
		}
	}
	tx.Commit()
}

func TestInheritance(t *testing.T) {
	db := openMem(t)
	base := NewClass("Vehicle", Attr{Name: "speed", Type: TInt})
	base.Method("describe", func(ctx *Ctx, self *Object, args []any) (any, error) {
		return "vehicle", nil
	})
	if err := db.Dictionary().Register(base); err != nil {
		t.Fatal(err)
	}
	car := NewClass("Car", Attr{Name: "wheels", Type: TInt})
	car.Super = "Vehicle"
	if err := db.Dictionary().Register(car); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "Car")
	if err := db.Set(tx, obj, "speed", 120); err != nil {
		t.Fatalf("inherited attribute not available: %v", err)
	}
	if err := db.Set(tx, obj, "wheels", 4); err != nil {
		t.Fatal(err)
	}
	res, err := db.Invoke(tx, obj, "describe")
	if err != nil || res != "vehicle" {
		t.Fatalf("inherited method: %v, %v", res, err)
	}
	tx.Commit()
	if !db.Dictionary().IsSubclassOf("Car", "Vehicle") {
		t.Fatal("IsSubclassOf(Car, Vehicle) = false")
	}
	if db.Dictionary().IsSubclassOf("Vehicle", "Car") {
		t.Fatal("IsSubclassOf(Vehicle, Car) = true")
	}
}

func TestInheritanceErrors(t *testing.T) {
	db := openMem(t)
	orphan := NewClass("Orphan")
	orphan.Super = "Missing"
	if err := db.Dictionary().Register(orphan); err == nil {
		t.Fatal("registering with missing superclass succeeded")
	}
	base := NewClass("B", Attr{Name: "x", Type: TInt})
	db.Dictionary().Register(base)
	shadow := NewClass("S", Attr{Name: "x", Type: TInt})
	shadow.Super = "B"
	if err := db.Dictionary().Register(shadow); err == nil {
		t.Fatal("redeclaring inherited attribute succeeded")
	}
	if err := db.Dictionary().Register(NewClass("B")); err == nil {
		t.Fatal("duplicate class registration succeeded")
	}
}

func TestExtent(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, false)
	tx := db.Begin()
	for i := 0; i < 5; i++ {
		db.NewObject(tx, "River")
	}
	tx.Commit()
	n := 0
	db.Extent("River", func(OID) { n++ })
	if n != 5 {
		t.Fatalf("extent size = %d, want 5", n)
	}
}

func TestNestedTxnAttributeUndo(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, false)
	top := db.Begin()
	obj, _ := db.NewObject(top, "River")
	db.Set(top, obj, "level", 1)
	child, _ := top.BeginChild()
	db.Set(child, obj, "level", 2)
	child.Abort()
	if v, _ := db.Get(top, obj, "level"); v != int64(1) {
		t.Fatalf("level after child abort = %v, want 1", v)
	}
	child2, _ := top.BeginChild()
	db.Set(child2, obj, "level", 3)
	child2.Commit()
	if v, _ := db.Get(top, obj, "level"); v != int64(3) {
		t.Fatalf("level after child commit = %v, want 3", v)
	}
	top.Commit()
}

func TestSinkWantsFilterSuppressesEmit(t *testing.T) {
	db := openMem(t)
	registerRiver(t, db, true)
	sink := &captureSink{wants: func(string) bool { return false }}
	db.SetSink(sink)
	tx := db.Begin()
	obj, _ := db.NewObject(tx, "River")
	db.Invoke(tx, obj, "updateWaterLevel", int64(30))
	tx.Commit()
	if len(sink.events) != 0 {
		t.Fatalf("Wants=false still delivered %d events", len(sink.events))
	}
}
