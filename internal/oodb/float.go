package oodb

import "math"

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
