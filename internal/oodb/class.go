package oodb

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/event"
)

// Attr declares one typed attribute of a class.
type Attr struct {
	Name string
	Type AttrType
}

// MethodImpl is the body of a registered method. It receives an
// invocation context bound to the current transaction, the receiver,
// and the argument list, and returns the method result.
type MethodImpl func(ctx *Ctx, self *Object, args []any) (any, error)

// Class is a class descriptor: the Go analogue of a C++ class compiled
// through the Open OODB preprocessor. Monitored reports whether the
// class is sentried; the declaration and every call site are identical
// for monitored and unmonitored classes (§6.1's transparency
// requirement) — only event delivery differs.
type Class struct {
	Name      string
	Super     string // name of the superclass, "" for roots
	Monitored bool

	attrs     []Attr
	attrIndex map[string]int
	methods   map[string]MethodImpl

	keyMu sync.RWMutex
	keys  map[string]string // cached event spec keys
}

// methodKey returns the cached spec key for a method event, avoiding
// per-invocation formatting on the sentry fast path.
func (c *Class) methodKey(method string, when event.When) string {
	ck := "m:" + method + ":" + when.String()
	c.keyMu.RLock()
	if k, ok := c.keys[ck]; ok {
		c.keyMu.RUnlock()
		return k
	}
	c.keyMu.RUnlock()
	k := event.MethodSpec{Class: c.Name, Method: method, When: when}.Key()
	c.keyMu.Lock()
	if c.keys == nil {
		c.keys = make(map[string]string)
	}
	c.keys[ck] = k
	c.keyMu.Unlock()
	return k
}

// stateKey returns the cached spec key for a state-change event.
func (c *Class) stateKey(attr string) string {
	ck := "s:" + attr
	c.keyMu.RLock()
	if k, ok := c.keys[ck]; ok {
		c.keyMu.RUnlock()
		return k
	}
	c.keyMu.RUnlock()
	k := event.StateSpec{Class: c.Name, Attr: attr}.Key()
	c.keyMu.Lock()
	if c.keys == nil {
		c.keys = make(map[string]string)
	}
	c.keys[ck] = k
	c.keyMu.Unlock()
	return k
}

// NewClass creates a class descriptor with the given attributes.
func NewClass(name string, attrs ...Attr) *Class {
	c := &Class{
		Name:      name,
		attrs:     attrs,
		attrIndex: make(map[string]int, len(attrs)),
		methods:   make(map[string]MethodImpl),
	}
	for i, a := range attrs {
		c.attrIndex[a.Name] = i
	}
	return c
}

// Attrs returns the declared attributes in declaration order,
// including inherited ones once the class is registered.
func (c *Class) Attrs() []Attr { return c.attrs }

// AttrIndex returns the slot of the named attribute, or -1.
func (c *Class) AttrIndex(name string) int {
	if i, ok := c.attrIndex[name]; ok {
		return i
	}
	return -1
}

// Method registers (or overrides) a method body and returns the class
// for chaining.
func (c *Class) Method(name string, impl MethodImpl) *Class {
	c.methods[name] = impl
	return c
}

// MethodNames lists registered method names, sorted.
func (c *Class) MethodNames() []string {
	out := make([]string, 0, len(c.methods))
	for n := range c.methods {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// lookupMethod resolves a method by name.
func (c *Class) lookupMethod(name string) (MethodImpl, bool) {
	m, ok := c.methods[name]
	return m, ok
}

// Dictionary is the data dictionary: the globally known repository of
// type information (paper §5). It registers classes and resolves
// inheritance: a subclass inherits attributes and methods from its
// superclass chain at registration time.
type Dictionary struct {
	mu      sync.RWMutex
	classes map[string]*Class
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{classes: make(map[string]*Class)}
}

// Register adds a class. If the class names a superclass, the
// superclass must already be registered; its attributes are prepended
// and its methods inherited unless overridden.
func (d *Dictionary) Register(c *Class) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.classes[c.Name]; dup {
		return fmt.Errorf("oodb: class %q already registered", c.Name)
	}
	if c.Super != "" {
		super, ok := d.classes[c.Super]
		if !ok {
			return fmt.Errorf("oodb: superclass %q of %q not registered", c.Super, c.Name)
		}
		merged := make([]Attr, 0, len(super.attrs)+len(c.attrs))
		merged = append(merged, super.attrs...)
		for _, a := range c.attrs {
			if super.AttrIndex(a.Name) >= 0 {
				return fmt.Errorf("oodb: class %q redeclares inherited attribute %q", c.Name, a.Name)
			}
			merged = append(merged, a)
		}
		c.attrs = merged
		c.attrIndex = make(map[string]int, len(merged))
		for i, a := range merged {
			c.attrIndex[a.Name] = i
		}
		for name, impl := range super.methods {
			if _, overridden := c.methods[name]; !overridden {
				c.methods[name] = impl
			}
		}
	}
	d.classes[c.Name] = c
	return nil
}

// Lookup returns the named class.
func (d *Dictionary) Lookup(name string) (*Class, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.classes[name]
	if !ok {
		return nil, fmt.Errorf("oodb: class %q not registered", name)
	}
	return c, nil
}

// Classes lists registered class names, sorted.
func (d *Dictionary) Classes() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.classes))
	for n := range d.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsSubclassOf reports whether class sub equals or descends from super.
func (d *Dictionary) IsSubclassOf(sub, super string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for name := sub; name != ""; {
		if name == super {
			return true
		}
		c, ok := d.classes[name]
		if !ok {
			return false
		}
		name = c.Super
	}
	return false
}
