// Package reach is the public API of the REACH active OODBMS — a Go
// reproduction of the system described in Buchmann, Zimmermann,
// Blakeley & Wells, "Building an Integrated Active OODBMS:
// Requirements, Architecture, and Design Decisions" (ICDE 1995).
//
// REACH integrates event detection, event composition and ECA-rule
// execution with a full object-oriented DBMS: a slotted-page storage
// manager with write-ahead logging and crash recovery, an object model
// with classes, typed attributes and registered methods, flat and
// closed nested transactions with a strict-2PL lock manager, a sentry
// dispatcher that traps method invocations and state changes, an
// event algebra (sequence, conjunction, disjunction, negation,
// closure, history) with the SNOOP consumption policies, six rule
// coupling modes, and an OQL-flavoured query processor whose indexes
// are maintained by ECA rules.
//
// Quickstart:
//
//	sys, err := reach.Open(reach.Options{Dir: "/tmp/plantdb"})
//	...
//	river := reach.NewClass("River", reach.Attr{Name: "level", Type: reach.TInt})
//	river.Monitored = true
//	river.Method("updateWaterLevel", func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
//	    return nil, ctx.Set(self, "level", args[0])
//	})
//	sys.RegisterClass(river)
//	sys.LoadRules(`rule Low { decl River *r, int x;
//	                          event after r->updateWaterLevel(x);
//	                          cond imm x < 37;
//	                          action imm abort "water level critical"; };`)
package reach

import (
	"repro/internal/algebra"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/eca"
	"repro/internal/event"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/rules/analysis"
	"repro/internal/txn"
)

// System is a running REACH instance: database, rule engine, queries.
type System = core.System

// Observability surface (metrics registry, lifecycle traces, admin
// HTTP endpoints) — see System.Metrics, System.Tracer, System.Admin.
type (
	// Registry is the shared metrics registry.
	Registry = obs.Registry
	// Tracer retains recent event-lifecycle traces.
	Tracer = obs.Tracer
	// Trace is one end-to-end event lifecycle record.
	Trace = obs.Trace
	// Span is one stage of a trace.
	Span = obs.Span
)

// Options configure Open.
type Options = core.Options

// EngineOptions tune the rule engine (Options.Engine), including the
// supervised executor for detached rule work.
type EngineOptions = eca.Options

// Open assembles a REACH system.
func Open(opts Options) (*System, error) { return core.Open(opts) }

// Object model.
type (
	// Class describes an application class: attributes and methods.
	Class = oodb.Class
	// Attr declares one typed attribute.
	Attr = oodb.Attr
	// Object is an instance of a class.
	Object = oodb.Object
	// OID is an object identifier.
	OID = oodb.OID
	// Ctx is the invocation context passed to method bodies.
	Ctx = oodb.Ctx
	// MethodImpl is a registered method body.
	MethodImpl = oodb.MethodImpl
	// Txn is a transaction (top-level or nested).
	Txn = txn.Txn
)

// NewClass creates a class descriptor.
func NewClass(name string, attrs ...Attr) *Class { return oodb.NewClass(name, attrs...) }

// Attribute types.
const (
	TInt    = oodb.TInt
	TFloat  = oodb.TFloat
	TString = oodb.TString
	TBool   = oodb.TBool
	TRef    = oodb.TRef
	TTime   = oodb.TTime
	TBytes  = oodb.TBytes
	TList   = oodb.TList
)

// Rules and coupling modes.
type (
	// Rule is an ECA rule registered programmatically.
	Rule = eca.Rule
	// RuleCtx is passed to rule conditions and actions.
	RuleCtx = eca.RuleCtx
	// Coupling is a rule execution mode relative to the trigger.
	Coupling = eca.Coupling
	// LoadedRules tracks a rule set loaded from the rule language.
	LoadedRules = rules.Loaded
	// OverloadPolicy selects what a full executor queue does to new
	// detached rule work (block or shed).
	OverloadPolicy = eca.OverloadPolicy
	// DeadLetter is one detached rule firing the executor gave up on.
	DeadLetter = eca.DeadLetter
	// BreakerState is a snapshot of one rule's circuit breaker.
	BreakerState = eca.BreakerState
)

// Supervised-executor overload policies.
const (
	OverloadBlock = eca.OverloadBlock
	OverloadShed  = eca.OverloadShed
)

// Overload governor: system-wide resource accounting, the
// healthy → degraded → shedding → read-only state machine, writer
// admission control, and the /health contract (see System.Governor).
type (
	// Governor is the system-wide overload governor.
	Governor = governor.Governor
	// GovernorOptions tune the governor (Options.Governor).
	GovernorOptions = governor.Options
	// GovernorLevels are one resource's watermarks.
	GovernorLevels = governor.Levels
	// HealthState is a rung on the governor's health ladder.
	HealthState = governor.State
)

// Governor health states, healthiest first.
const (
	Healthy  = governor.Healthy
	Degraded = governor.Degraded
	Shedding = governor.Shedding
	ReadOnly = governor.ReadOnly
)

// Supervised-executor and governor errors.
var (
	// ErrOverloaded rejects a new writer (System.BeginTxn) under
	// overload: back off and retry.
	ErrOverloaded = governor.ErrOverloaded
	// ErrShutdown rejects new writers once graceful shutdown began.
	ErrShutdown = governor.ErrShutdown
	// ErrOverload rejects a detached spawn when the queue is full
	// under the shed policy.
	ErrOverload = eca.ErrOverload
	// ErrDraining rejects detached spawns after Drain or Close began.
	ErrDraining = eca.ErrDraining
	// ErrRuleDeadline aborts a rule attempt that exceeded its deadline.
	ErrRuleDeadline = eca.ErrRuleDeadline
	// ErrBreakerOpen rejects a spawn whose rule's breaker is open.
	ErrBreakerOpen = eca.ErrBreakerOpen
	// ErrDeadlock is the transaction manager's deadlock-victim error;
	// the executor treats it as retriable (see IsRetriable).
	ErrDeadlock = txn.ErrDeadlock
)

// IsRetriable reports whether a transaction error is a transient
// scheduling failure (deadlock victim, cancelled lock wait) that a
// fresh attempt may not hit again.
func IsRetriable(err error) bool { return txn.IsRetriable(err) }

// The six REACH coupling modes (paper §3.2).
const (
	Immediate                = eca.Immediate
	Deferred                 = eca.Deferred
	Detached                 = eca.Detached
	DetachedParallelCausal   = eca.DetachedParallelCausal
	DetachedSequentialCausal = eca.DetachedSequentialCausal
	DetachedExclusiveCausal  = eca.DetachedExclusiveCausal
)

// Event specifications.
type (
	// MethodSpec matches method invocations.
	MethodSpec = event.MethodSpec
	// StateSpec matches attribute changes.
	StateSpec = event.StateSpec
	// TxnSpec matches flow-control events.
	TxnSpec = event.TxnSpec
	// TemporalSpec matches points in time.
	TemporalSpec = event.TemporalSpec
	// Instance is one event occurrence.
	Instance = event.Instance
)

// Method event positions, transaction phases and temporal kinds.
const (
	Before = event.Before
	After  = event.After

	BOT      = event.BOT
	EOT      = event.EOT
	OnCommit = event.Commit
	OnAbort  = event.Abort

	Absolute      = event.Absolute
	Relative      = event.Relative
	Periodic      = event.Periodic
	MilestoneKind = event.MilestoneKind
)

// TxnStatus is a transaction outcome.
type TxnStatus = txn.Status

// Transaction outcomes.
const (
	TxnActive    = txn.Active
	TxnCommitted = txn.Committed
	TxnAborted   = txn.Aborted
)

// Event algebra.
type (
	// Composite declares a named composite event.
	Composite = algebra.Composite
	// Expr is an event-algebra expression node.
	Expr = algebra.Expr
	// Prim matches a primitive event spec key.
	Prim = algebra.Prim
	// Seq matches sub-events in order.
	Seq = algebra.Seq
	// Conj matches sub-events in any order.
	Conj = algebra.Conj
	// Disj matches any sub-event.
	Disj = algebra.Disj
	// Neg is non-occurrence.
	Neg = algebra.Neg
	// Closure collapses occurrences, signalled at end of life-span.
	Closure = algebra.Closure
	// History matches after N occurrences.
	History = algebra.History
	// Policy is a consumption policy.
	Policy = algebra.Policy
	// Scope is a composite life-span rule.
	Scope = algebra.Scope
)

// Consumption policies (SNOOP contexts, paper §3.4) and scopes (§3.3).
const (
	Recent     = algebra.Recent
	Chronicle  = algebra.Chronicle
	Continuous = algebra.Continuous
	Cumulative = algebra.Cumulative

	ScopeTransaction = algebra.ScopeTransaction
	ScopeGlobal      = algebra.ScopeGlobal
)

// Queries.
type (
	// Pred is a query predicate.
	Pred = query.Pred
	// HashIndex is a rule-maintained equality index.
	HashIndex = query.HashIndex
)

// Query comparison operators.
const (
	Eq = query.Eq
	Ne = query.Ne
	Lt = query.Lt
	Le = query.Le
	Gt = query.Gt
	Ge = query.Ge
)

// Clocks.
type (
	// Clock is the engine's time source.
	Clock = clock.Clock
	// VirtualClock is a deterministic clock driven by Advance.
	VirtualClock = clock.Virtual
)

// NewVirtualClock returns a deterministic clock for tests, examples
// and benchmarks.
var NewVirtualClock = clock.NewVirtual

// NewRealClock returns the wall-clock time source.
var NewRealClock = clock.NewReal

// RuleDecl is one parsed rule declaration.
type RuleDecl = rules.RuleDecl

// ParseRules parses rule-language source without registering anything
// (syntax checking, e.g. for the rulec tool).
func ParseRules(src string) ([]*rules.RuleDecl, error) { return rules.Parse(src) }

// RuleDiag is a semantic diagnostic from VetRules.
type RuleDiag = rules.Diag

// RuleVetter accumulates rule names across files so duplicate
// definitions are caught over a whole rule set.
type RuleVetter = rules.Vetter

// NewRuleVetter returns a vetter for a multi-file rule set.
var NewRuleVetter = rules.NewVetter

// VetRules checks parsed rules for semantic errors the parser cannot
// see: Table 1-invalid coupling/category pairs, cross-transaction
// composites without validity, unknown consumption policies, and
// undeclared variable references.
func VetRules(file string, decls []*rules.RuleDecl) []RuleDiag { return rules.Vet(file, decls) }

// Whole-ruleset interaction analysis: the triggering graph connecting
// rules through the events their actions raise, with termination
// (cycle detection, static cascade-depth bound), confluence
// (order-dependent equal-priority pairs), and reachability (rules
// whose event can never be raised) checks. Embedders can gate rule
// registration on RuleAnalysis.HasErrors before calling LoadRules.
type (
	// RuleAnalyzer accumulates rule files and analyzes them as one set.
	RuleAnalyzer = analysis.Analyzer
	// RuleAnalysis is the outcome: graph, findings, cycles, depth bound.
	RuleAnalysis = analysis.Result
	// RuleFinding is one analysis diagnostic.
	RuleFinding = analysis.Finding
	// RuleGraph is the triggering graph (DOT-exportable).
	RuleGraph = analysis.Graph
	// RuleWorld closes the analysis world to a known schema; nil means
	// any method or attribute may be raised by application code.
	RuleWorld = analysis.World
	// RuleCycle is one termination cycle through the triggering graph.
	RuleCycle = analysis.Cycle
	// RuleSeverity ranks analysis findings.
	RuleSeverity = analysis.Severity
)

// Analysis finding severities.
const (
	RuleWarning = analysis.Warning
	RuleError   = analysis.Error
)

// NewRuleAnalyzer returns an empty whole-ruleset analyzer.
var NewRuleAnalyzer = analysis.New

// AnalyzeRules analyzes a single rule file against an optional closed
// world (nil = open world).
func AnalyzeRules(file, src string, decls []*rules.RuleDecl, w *RuleWorld) *RuleAnalysis {
	return analysis.Analyze(file, src, decls, w)
}
