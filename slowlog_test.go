package reach

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSlowLogWaterfall is the latency-attribution acceptance scenario:
// a detached rule whose condition burns time, whose action blocks on a
// lock held by a concurrent user transaction, and whose commit forces
// the WAL, yields a slow-log entry whose spans name every phase —
// lock-wait, wal-fsync, condition, action, commit — and together
// attribute at least 90% of the end-to-end duration.
func TestSlowLogWaterfall(t *testing.T) {
	sys, err := Open(Options{
		Dir: t.TempDir(),
		Engine: EngineOptions{
			SlowLogThreshold: 5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	river := NewClass("River",
		Attr{Name: "level", Type: TInt})
	river.Monitored = true
	river.Method("updateWaterLevel", func(ctx *Ctx, self *Object, args []any) (any, error) {
		return nil, ctx.Set(self, "level", args[0])
	})
	if err := sys.RegisterClass(river); err != nil {
		t.Fatal(err)
	}

	tx := sys.Begin()
	trigger, _ := sys.DB.NewObject(tx, "River")
	contended, _ := sys.DB.NewObject(tx, "River")
	// Persist both so rule commits reach the WAL (and fsync).
	if err := sys.DB.SetRoot(tx, "trigger", trigger); err != nil {
		t.Fatal(err)
	}
	if err := sys.DB.SetRoot(tx, "contended", contended); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	key := MethodSpec{Class: "River", Method: "updateWaterLevel", When: After}.Key()
	if err := sys.Engine.AddRule(&Rule{
		Name: "slow-chain", EventKey: key, ActionMode: Detached,
		Cond: func(rc *RuleCtx) (bool, error) {
			time.Sleep(5 * time.Millisecond)
			return true, nil
		},
		Action: func(rc *RuleCtx) error {
			// Blocks on the X lock the blocker transaction holds.
			return rc.DB.Set(rc.Txn, contended, "level", int64(99))
		},
	}); err != nil {
		t.Fatal(err)
	}

	// A user transaction takes the contended object's lock, holds it
	// while the detached rule waits, then commits.
	blocker := sys.Begin()
	if err := sys.DB.Set(blocker, contended, "level", int64(1)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond)
		if err := blocker.Commit(); err != nil {
			t.Error("blocker commit:", err)
		}
	}()

	tx2 := sys.Begin()
	if _, err := sys.DB.Invoke(tx2, trigger, "updateWaterLevel", int64(42)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	sys.Engine.WaitDetached()

	sl := sys.Engine.SlowLog()
	entries := sl.Snapshot()
	if len(entries) == 0 {
		t.Fatalf("no promoted traces; tracer has %+v", sys.Tracer.Recent(8))
	}
	phases := []string{"lock-wait", "wal-fsync", "condition-eval", "action-exec", "commit"}
	var found bool
	for _, e := range entries {
		all := true
		for _, ph := range phases {
			if e.AttributedNS[ph] <= 0 {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		found = true
		if e.TotalNS < int64(30*time.Millisecond) {
			t.Errorf("TotalNS = %v, want >= 30ms (the blocker hold)", time.Duration(e.TotalNS))
		}
		if e.AttributedNS["lock-wait"] < int64(10*time.Millisecond) {
			t.Errorf("lock-wait = %v, want >= 10ms", time.Duration(e.AttributedNS["lock-wait"]))
		}
		if cov := float64(e.CoveredNS) / float64(e.TotalNS); cov < 0.90 {
			t.Errorf("spans cover %.1f%% of end-to-end, want >= 90%% (attributed %v of %v: %v)",
				cov*100, time.Duration(e.CoveredNS), time.Duration(e.TotalNS), e.AttributedNS)
		}
	}
	if !found {
		t.Fatalf("no slow-log entry with all phases %v; entries: %+v", phases, entries)
	}

	// The same entry is served at /slowlog.
	rec := httptest.NewRecorder()
	sys.Admin().Mux().ServeHTTP(rec, httptest.NewRequest("GET", "/slowlog", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /slowlog status %d", rec.Code)
	}
	var got struct {
		ThresholdNS int64 `json:"threshold_ns"`
		Entries     []struct {
			AttributedNS map[string]int64 `json:"attributed_ns"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad /slowlog JSON: %v", err)
	}
	if got.ThresholdNS != int64(5*time.Millisecond) || len(got.Entries) == 0 {
		t.Fatalf("/slowlog = %+v", got)
	}
	body := rec.Body.String()
	for _, ph := range phases {
		if !strings.Contains(body, ph) {
			t.Errorf("/slowlog response missing phase %q", ph)
		}
	}

	// The attribution histograms saw the same traffic.
	reg := sys.Metrics
	if n := reg.Histogram("reach_lock_wait_seconds", "", "mode", "X").Count(); n == 0 {
		t.Error("reach_lock_wait_seconds{mode=X} has no observations")
	}
	if n := reg.Histogram("reach_wal_fsync_seconds", "").Count(); n == 0 {
		t.Error("reach_wal_fsync_seconds has no observations")
	}
	if n := reg.Histogram("reach_rule_phase_seconds", "", "phase", "condition").Count(); n == 0 {
		t.Error("reach_rule_phase_seconds{phase=condition} has no observations")
	}
	if n := reg.Histogram("reach_txn_durable_commit_seconds", "").Count(); n == 0 {
		t.Error("reach_txn_durable_commit_seconds has no observations")
	}
}

// TestSlowLogDisabledByDefault: with no threshold configured, nothing
// is promoted even when rules are slow.
func TestSlowLogDisabledByDefault(t *testing.T) {
	sys, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	river := NewClass("River", Attr{Name: "level", Type: TInt})
	river.Monitored = true
	river.Method("updateWaterLevel", func(ctx *Ctx, self *Object, args []any) (any, error) {
		return nil, ctx.Set(self, "level", args[0])
	})
	if err := sys.RegisterClass(river); err != nil {
		t.Fatal(err)
	}
	tx := sys.Begin()
	obj, _ := sys.DB.NewObject(tx, "River")
	tx.Commit()

	key := MethodSpec{Class: "River", Method: "updateWaterLevel", When: After}.Key()
	sys.Engine.AddRule(&Rule{
		Name: "slow", EventKey: key, ActionMode: Immediate,
		Action: func(rc *RuleCtx) error {
			time.Sleep(2 * time.Millisecond)
			return nil
		},
	})
	tx2 := sys.Begin()
	if _, err := sys.DB.Invoke(tx2, obj, "updateWaterLevel", int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := sys.Engine.SlowLog().Len(); n != 0 {
		t.Fatalf("slow log has %d entries with promotion disabled", n)
	}
}
