package reach

import (
	"testing"
	"time"
)

// realClockSystem builds a River system on the real clock, so span
// durations measure actual elapsed time.
func realClockSystem(t *testing.T) *System {
	t.Helper()
	sys, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	river := NewClass("River", Attr{Name: "level", Type: TInt})
	river.Monitored = true
	river.Method("updateWaterLevel", func(ctx *Ctx, self *Object, args []any) (any, error) {
		return nil, ctx.Set(self, "level", args[0])
	})
	if err := sys.RegisterClass(river); err != nil {
		t.Fatal(err)
	}
	return sys
}

// stageDurs maps each recorded stage of a trace to its total duration.
func stageDurs(tr Trace) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, sp := range tr.Spans {
		out[sp.Stage] += sp.Dur
	}
	return out
}

// findTraceWith returns the retained trace containing every wanted
// stage, if any.
func findTraceWith(sys *System, stages ...string) (Trace, bool) {
	for _, tr := range sys.Tracer.Recent(64) {
		durs := stageDurs(tr)
		all := true
		for _, st := range stages {
			if _, ok := durs[st]; !ok {
				all = false
				break
			}
		}
		if all {
			return tr, true
		}
	}
	return Trace{}, false
}

// TestTraceImmediateRule checks that one trace follows an event from
// sentry detection through immediate condition, action, and the rule
// subtransaction's commit.
func TestTraceImmediateRule(t *testing.T) {
	sys := realClockSystem(t)
	defer sys.Close()
	tx := sys.Begin()
	river, _ := sys.DB.NewObject(tx, "River")
	tx.Commit()

	key := MethodSpec{Class: "River", Method: "updateWaterLevel", When: After}.Key()
	sys.Engine.AddRule(&Rule{
		Name: "watch", EventKey: key, ActionMode: Immediate,
		Cond: func(rc *RuleCtx) (bool, error) {
			time.Sleep(time.Millisecond)
			return true, nil
		},
		Action: func(rc *RuleCtx) error {
			time.Sleep(time.Millisecond)
			return nil
		},
	})

	tx2 := sys.Begin()
	if _, err := sys.DB.Invoke(tx2, river, "updateWaterLevel", int64(30)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	tr, ok := findTraceWith(sys, "detect", "condition-eval", "action-exec", "commit")
	if !ok {
		t.Fatalf("no trace with the immediate lifecycle; have %+v", sys.Tracer.Recent(8))
	}
	durs := stageDurs(tr)
	for _, st := range []string{"detect", "condition-eval", "action-exec"} {
		if durs[st] < time.Millisecond {
			t.Errorf("stage %s duration = %v, want >= 1ms", st, durs[st])
		}
	}
	if durs["commit"] <= 0 {
		t.Errorf("commit span duration = %v, want > 0", durs["commit"])
	}
}

// TestTraceDeferredRule checks the enqueue-deferred span measures the
// queue wait from enqueue (during the transaction) to dequeue (EOT).
func TestTraceDeferredRule(t *testing.T) {
	sys := realClockSystem(t)
	defer sys.Close()
	tx := sys.Begin()
	river, _ := sys.DB.NewObject(tx, "River")
	tx.Commit()

	key := MethodSpec{Class: "River", Method: "updateWaterLevel", When: After}.Key()
	sys.Engine.AddRule(&Rule{
		Name: "audit", EventKey: key, ActionMode: Deferred,
		Cond: func(rc *RuleCtx) (bool, error) {
			time.Sleep(time.Millisecond)
			return true, nil
		},
		Action: func(rc *RuleCtx) error {
			time.Sleep(time.Millisecond)
			return nil
		},
	})

	tx2 := sys.Begin()
	if _, err := sys.DB.Invoke(tx2, river, "updateWaterLevel", int64(1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // work between trigger and EOT
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	tr, ok := findTraceWith(sys, "detect", "enqueue-deferred", "condition-eval", "action-exec", "commit")
	if !ok {
		t.Fatalf("no trace with the deferred lifecycle; have %+v", sys.Tracer.Recent(8))
	}
	durs := stageDurs(tr)
	if durs["enqueue-deferred"] < 2*time.Millisecond {
		t.Errorf("queue-wait span = %v, want >= 2ms", durs["enqueue-deferred"])
	}
	if durs["action-exec"] < time.Millisecond {
		t.Errorf("action-exec = %v, want >= 1ms", durs["action-exec"])
	}
}

// TestTraceCompositeRule is the acceptance scenario: a composite rule
// fired through the system yields one trace whose stages span
// detection, composition, deferred queuing, and rule execution — at
// least four named stages with non-zero durations.
func TestTraceCompositeRule(t *testing.T) {
	sys := realClockSystem(t)
	defer sys.Close()
	tx := sys.Begin()
	river, _ := sys.DB.NewObject(tx, "River")
	tx.Commit()

	key := MethodSpec{Class: "River", Method: "updateWaterLevel", When: After}.Key()
	// Transaction scope: the completion carries the raising
	// transaction, which deferred coupling requires.
	comp := &Composite{
		Name:     "level-pair",
		Expr:     Seq{Exprs: []Expr{Prim{Key: key}, Prim{Key: key}}},
		Policy:   Chronicle,
		Scope:    ScopeTransaction,
		Validity: time.Hour,
	}
	if err := sys.Engine.DefineComposite(comp); err != nil {
		t.Fatal(err)
	}
	sys.Engine.AddRule(&Rule{
		Name: "onPair", EventKey: comp.Key(), ActionMode: Deferred,
		Cond: func(rc *RuleCtx) (bool, error) {
			time.Sleep(time.Millisecond)
			return true, nil
		},
		Action: func(rc *RuleCtx) error {
			time.Sleep(time.Millisecond)
			return nil
		},
	})

	tx2 := sys.Begin()
	for i := 0; i < 2; i++ {
		if _, err := sys.DB.Invoke(tx2, river, "updateWaterLevel", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sys.Engine.DrainComposers()
	time.Sleep(2 * time.Millisecond)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	tr, ok := findTraceWith(sys,
		"detect", "compose", "enqueue-deferred", "condition-eval", "action-exec", "commit")
	if !ok {
		t.Fatalf("no trace with the full composite lifecycle; have %+v", sys.Tracer.Recent(8))
	}
	durs := stageDurs(tr)
	nonZero := 0
	for _, d := range durs {
		if d > 0 {
			nonZero++
		}
	}
	if nonZero < 4 {
		t.Fatalf("only %d stages with non-zero duration: %+v", nonZero, durs)
	}
	if durs["enqueue-deferred"] < 2*time.Millisecond {
		t.Errorf("queue-wait = %v, want >= 2ms", durs["enqueue-deferred"])
	}

	// The composite completion must carry the trace of its completing
	// constituent: the trace root is the primitive spec key.
	if tr.Root != key {
		t.Errorf("trace root = %q, want primitive key %q", tr.Root, key)
	}

	// The per-coupling-mode firing metrics moved with it.
	reg := sys.Metrics
	if v := reg.Counter("reach_rules_fired_total", "", "mode", "deferred").Value(); v == 0 {
		t.Error("reach_rules_fired_total{mode=deferred} = 0 after deferred firing")
	}
	if n := reg.Histogram("reach_rule_latency_seconds", "", "mode", "deferred").Count(); n == 0 {
		t.Error("reach_rule_latency_seconds{mode=deferred} has no observations")
	}
}
