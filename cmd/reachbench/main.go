// reachbench regenerates every table and figure of the REACH paper's
// evaluation and the ablation experiments derived from its design
// claims (see DESIGN.md for the experiment index).
//
//	reachbench                        # run everything
//	reachbench -table1                # just Table 1
//	reachbench -figure1 -figure2
//	reachbench -run E1,E4,E10         # selected experiments
//	reachbench -n 20000               # events per configuration
//	reachbench -json BENCH_6.json     # also emit machine-readable results
//	reachbench -diff old.json new.json  # exit non-zero on regression
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table 1 only")
		figure1   = flag.Bool("figure1", false, "trace the Open OODB architecture (Figure 1)")
		figure2   = flag.Bool("figure2", false, "trace the ECA message flow (Figure 2)")
		run       = flag.String("run", "", "comma-separated experiment ids (E1..E14); empty = all")
		n         = flag.Int("n", 5000, "events per measured configuration")
		jsonOut   = flag.String("json", "", "write results to this BENCH_*.json perf-trajectory file")
		diff      = flag.Bool("diff", false, "compare two BENCH_*.json files: reachbench -diff old.json new.json")
		tolerance = flag.Float64("tolerance", 0.25, "allowed ns/op slowdown ratio in -diff mode (0.25 = 25%)")
	)
	flag.Parse()

	if *diff {
		os.Exit(runDiff(flag.Args(), *tolerance))
	}

	specific := *table1 || *figure1 || *figure2 || *run != ""
	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id != "" {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	wantExp := func(id string) bool {
		if !specific {
			return true
		}
		return want[id]
	}

	if *table1 || !specific {
		printTable1()
	}
	if *figure1 || !specific {
		printFigure1()
	}
	if *figure2 || !specific {
		printFigure2()
	}

	type exp struct {
		id   string
		desc string
		run  func() []bench.Row
	}
	experiments := []exp{
		{"E1", "sentry overhead classes (§6.2, [WSTR93])", func() []bench.Row { return bench.RunE1(*n) }},
		{"E2", "layered vs integrated architecture (§4)", func() []bench.Row { return bench.RunE2(*n) }},
		{"E3", "sequential vs parallel rule execution (§6.4)", func() []bench.Row {
			return bench.RunE3([]int{4}, []int{1, 64, 512}, *n/50)
		}},
		{"E4", "synchronous vs asynchronous composition (§2)", func() []bench.Row {
			return bench.RunE4([]int{1, 8, 32}, *n)
		}},
		{"E5", "immediate-composite stall — the (N) of Table 1 (§3.2)", func() []bench.Row {
			return bench.RunE5([]int{1, 8, 32}, *n)
		}},
		{"E6", "consumption policies (§3.4)", func() []bench.Row { return bench.RunE6(*n) }},
		{"E7", "event life-spans and semi-composed GC (§3.3)", func() []bench.Row {
			return bench.RunE7(50, *n/50)
		}},
		{"E8", "many small composers vs monolithic graph (§6.3)", func() []bench.Row {
			return bench.RunE8(16, *n)
		}},
		{"E9", "distributed vs central event history (§6.3)", func() []bench.Row {
			return bench.RunE9(8, *n/8)
		}},
		{"E10", "selective ECA-manager dispatch vs global scan (§6.4)", func() []bench.Row {
			return bench.RunE10([]int{10, 100, 1000}, *n)
		}},
		{"E11", "nested subtransaction overhead (§4, §6.4)", func() []bench.Row { return bench.RunE11(*n) }},
		{"E12", "storage substrate: WAL, commit force, recovery", func() []bench.Row { return bench.RunE12(*n) }},
		{"E13", "contended commit path: group commit vs fsync-per-commit (§6)", func() []bench.Row {
			return bench.RunE13(8, *n/10)
		}},
		{"E14", "overload governor: goodput and p99 at 1x/2x/4x offered load, on vs ablated (§6)", func() []bench.Row {
			return bench.RunE14(2, 300*time.Millisecond)
		}},
	}
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.id
	}
	if bad := unknownExperiments(want, ids); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "reachbench: unknown experiment id(s) %s (known: %s)\n",
			strings.Join(bad, ", "), strings.Join(ids, ", "))
		os.Exit(2)
	}
	var results []bench.Row
	for _, e := range experiments {
		if !wantExp(e.id) {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", e.id, e.desc)
		rows := e.run()
		printRows(rows)
		results = append(results, rows...)
	}
	if *jsonOut != "" {
		f := &bench.File{Meta: bench.NewMeta(*n), Results: results}
		if err := bench.WriteJSON(*jsonOut, f); err != nil {
			fmt.Fprintf(os.Stderr, "reachbench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d results to %s\n", len(results), *jsonOut)
	}
}

// unknownExperiments returns the requested ids that name no known
// experiment, sorted. An id typo must fail loudly instead of silently
// running nothing.
func unknownExperiments(want map[string]bool, known []string) []string {
	k := make(map[string]bool, len(known))
	for _, id := range known {
		k[id] = true
	}
	var bad []string
	for id := range want {
		if !k[id] {
			bad = append(bad, id)
		}
	}
	sort.Strings(bad)
	return bad
}

// runDiff compares two perf-trajectory files and returns the process
// exit code: 0 when every baseline row is within tolerance, 1 on any
// regression, 2 on usage or read errors.
func runDiff(args []string, tolerance float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: reachbench -diff [-tolerance 0.25] old.json new.json")
		return 2
	}
	old, err := bench.ReadJSON(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "reachbench:", err)
		return 2
	}
	cur, err := bench.ReadJSON(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "reachbench:", err)
		return 2
	}
	regs := bench.Diff(old, cur, tolerance)
	if len(regs) == 0 {
		fmt.Printf("no regressions: %d baseline rows within %.0f%% of %s\n",
			len(old.Results), tolerance*100, args[0])
		return 0
	}
	fmt.Fprintf(os.Stderr, "%d regression(s) beyond %.0f%% tolerance:\n", len(regs), tolerance*100)
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "  "+r.String())
	}
	return 1
}

func printTable1() {
	fmt.Println("=== Table 1: supported combinations of event categories and coupling modes ===")
	if bad := bench.VerifyTable1(); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "MISMATCH against the paper: %v\n", bad)
		os.Exit(1)
	}
	rows := bench.Table1Rows()
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range rows {
		for i, c := range r {
			fmt.Printf("%-*s  ", widths[i], c)
		}
		fmt.Println()
	}
	fmt.Println("(regenerated from eca.Supported; verified cell-for-cell against the paper)")
}

func printFigure1() {
	fmt.Println("\n=== Figure 1: Open OODB architecture — module activation trace ===")
	dir, err := os.MkdirTemp("", "reach-figure1")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	lines, err := bench.Figure1Trace(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println("  " + l)
	}
}

func printFigure2() {
	fmt.Println("\n=== Figure 2: ECA-oriented architecture — message flow trace ===")
	lines, err := bench.Figure2Trace()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println("  " + l)
	}
}

func printRows(rows []bench.Row) {
	wc := 0
	for _, r := range rows {
		if len(r.Config) > wc {
			wc = len(r.Config)
		}
	}
	for _, r := range rows {
		fmt.Printf("  %-*s  %10.0f ns/op", wc, r.Config, r.NsPerOp)
		if r.Extra != "" {
			fmt.Printf("  [%s]", r.Extra)
		}
		fmt.Println()
	}
}
