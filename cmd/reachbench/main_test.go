package main

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/bench"
)

func TestUnknownExperiments(t *testing.T) {
	known := []string{"E1", "E2", "E10"}
	cases := []struct {
		want map[string]bool
		bad  []string
	}{
		{map[string]bool{}, nil},
		{map[string]bool{"E1": true, "E10": true}, nil},
		{map[string]bool{"E13": true}, []string{"E13"}},
		{map[string]bool{"E1": true, "EX": true, "E0": true}, []string{"E0", "EX"}},
	}
	for _, c := range cases {
		if got := unknownExperiments(c.want, known); !reflect.DeepEqual(got, c.bad) {
			t.Errorf("unknownExperiments(%v) = %v, want %v", c.want, got, c.bad)
		}
	}
}

func TestRunDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "old.json")
	same := filepath.Join(dir, "same.json")
	slow := filepath.Join(dir, "slow.json")

	f := &bench.File{Meta: bench.NewMeta(100), Results: []bench.Row{
		{Experiment: "E1", Config: "a", Ops: 100, NsPerOp: 1000},
	}}
	if err := bench.WriteJSON(base, f); err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteJSON(same, f); err != nil {
		t.Fatal(err)
	}
	g := &bench.File{Meta: f.Meta, Results: []bench.Row{
		{Experiment: "E1", Config: "a", Ops: 100, NsPerOp: 2000},
	}}
	if err := bench.WriteJSON(slow, g); err != nil {
		t.Fatal(err)
	}

	if code := runDiff([]string{base, same}, 0.25); code != 0 {
		t.Fatalf("self-diff exit = %d, want 0", code)
	}
	if code := runDiff([]string{base, slow}, 0.25); code != 1 {
		t.Fatalf("regression exit = %d, want 1", code)
	}
	if code := runDiff([]string{base}, 0.25); code != 2 {
		t.Fatalf("usage error exit = %d, want 2", code)
	}
	if code := runDiff([]string{base, filepath.Join(dir, "absent.json")}, 0.25); code != 2 {
		t.Fatalf("missing file exit = %d, want 2", code)
	}
}
