package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runRulec drives the compiler exactly as main does, capturing both
// streams and the exit code.
func runRulec(t *testing.T, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	var out, errw bytes.Buffer
	exit = run(args, strings.NewReader(""), &out, &errw)
	return out.String(), errw.String(), exit
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverges from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func TestValidRules(t *testing.T) {
	stdout, stderr, exit := runRulec(t, "-vet", filepath.Join("testdata", "valid.rules"))
	if exit != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", exit, stderr)
	}
	if stderr != "" {
		t.Errorf("unexpected stderr:\n%s", stderr)
	}
	checkGolden(t, "valid.golden", stdout)
}

func TestSyntaxError(t *testing.T) {
	stdout, stderr, exit := runRulec(t, filepath.Join("testdata", "syntax_error.rules"))
	if exit != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", exit, stdout)
	}
	if !strings.Contains(stderr, "line 2") {
		t.Errorf("syntax error lost its line number:\n%s", stderr)
	}
	checkGolden(t, "syntax_error.golden", stderr)
}

// TestVetRejectsTable1 seeds one rule per semantic check: Table 1
// violations on temporal and composite events, a cross-transaction
// composite without validity, an unknown consumption policy, an
// undeclared variable, and a duplicate rule name.
func TestVetRejectsTable1(t *testing.T) {
	path := filepath.Join("testdata", "table1_invalid.rules")
	stdout, stderr, exit := runRulec(t, "-vet", path)
	if exit != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", exit, stdout)
	}
	for _, want := range []string{
		"Table 1 rejects immediate condition coupling on a purely-temporal event",
		"Table 1 rejects immediate condition coupling on a composite-1tx event",
		"needs a validity clause",
		`unknown consumption policy "newest"`,
		`undeclared variable "threshold"`,
		`undeclared variable "other"`,
		"duplicate rule name",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("vet output missing %q", want)
		}
	}
	checkGolden(t, "table1_invalid.golden", stderr)
}

// TestVetPassesWithoutFlag confirms -vet is opt-in: the same
// semantically invalid file parses clean without it.
func TestVetPassesWithoutFlag(t *testing.T) {
	_, stderr, exit := runRulec(t, filepath.Join("testdata", "table1_invalid.rules"))
	if exit != 0 {
		t.Fatalf("exit = %d, want 0 (syntax only); stderr:\n%s", exit, stderr)
	}
}

// TestAnalyzeRejectsImmediateCycle drives the acceptance fixture: a
// seeded immediate-coupling cycle exits non-zero with the cycle path
// named rule-by-rule.
func TestAnalyzeRejectsImmediateCycle(t *testing.T) {
	stdout, stderr, exit := runRulec(t, "-analyze", filepath.Join("testdata", "cycle_imm.rules"))
	if exit != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", exit, stdout)
	}
	if !strings.Contains(stderr, "PingA -> PongB -> PingA") {
		t.Errorf("cycle path not named rule-by-rule:\n%s", stderr)
	}
	checkGolden(t, "cycle_imm.golden", stderr)
}

// TestAnalyzeSuppressedCyclePasses: the same set with a justified
// lint:allow comment is accepted.
func TestAnalyzeSuppressedCyclePasses(t *testing.T) {
	stdout, stderr, exit := runRulec(t, "-analyze", filepath.Join("testdata", "cycle_suppressed.rules"))
	if exit != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", exit, stderr)
	}
	if !strings.Contains(stdout, "1 suppressed") {
		t.Errorf("suppression not reported:\n%s", stdout)
	}
	checkGolden(t, "cycle_suppressed.golden", stdout)
}

// TestAnalyzeJSON checks the machine-readable findings shape: file,
// line, rule, analyzer, severity, message.
func TestAnalyzeJSON(t *testing.T) {
	stdout, _, exit := runRulec(t, "-analyze", "-json", filepath.Join("testdata", "cycle_imm.rules"))
	if exit != 1 {
		t.Fatalf("exit = %d, want 1", exit)
	}
	var findings []map[string]any
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(findings) == 0 {
		t.Fatal("no findings in JSON output")
	}
	f := findings[0]
	for _, key := range []string{"file", "line", "analyzer", "severity", "message"} {
		if _, ok := f[key]; !ok {
			t.Errorf("finding missing %q: %v", key, f)
		}
	}
	if f["analyzer"] != "termination" || f["severity"] != "error" {
		t.Errorf("finding = %v, want termination error", f)
	}
}

// TestVetJSON: rulec -vet -json emits vet diagnostics in the same
// machine-readable shape.
func TestVetJSON(t *testing.T) {
	stdout, _, exit := runRulec(t, "-vet", "-json", filepath.Join("testdata", "table1_invalid.rules"))
	if exit != 1 {
		t.Fatalf("exit = %d, want 1", exit)
	}
	var findings []map[string]any
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(findings) == 0 {
		t.Fatal("no findings in JSON output")
	}
	for _, f := range findings {
		if f["analyzer"] != "vet" {
			t.Errorf("analyzer = %v, want vet", f["analyzer"])
		}
	}
	// A clean file emits an empty array, not null.
	stdout, _, exit = runRulec(t, "-vet", "-json", filepath.Join("testdata", "valid.rules"))
	if exit != 0 {
		t.Fatalf("clean vet exit = %d, want 0", exit)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout)
	}
}

// TestAnalyzeDOT exports the triggering graph to stdout.
func TestAnalyzeDOT(t *testing.T) {
	stdout, _, exit := runRulec(t, "-analyze", "-dot", "-", filepath.Join("testdata", "cycle_imm.rules"))
	if exit != 1 {
		t.Fatalf("exit = %d, want 1", exit)
	}
	for _, want := range []string{
		"digraph triggering {",
		`"PingA" -> "PongB"`,
		`"PongB" -> "PingA"`,
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("DOT output missing %q:\n%s", want, stdout)
		}
	}
}

// TestAnalyzeExamplesClean keeps the shipped example rule sets free of
// unsuppressed analysis errors — the same gate make analyze runs in CI.
func TestAnalyzeExamplesClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "rules", "*.rules"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example rule files found: %v", err)
	}
	args := append([]string{"-analyze"}, paths...)
	stdout, stderr, exit := runRulec(t, args...)
	if exit != 0 {
		t.Fatalf("examples not analysis-clean: exit %d\n%s%s", exit, stdout, stderr)
	}
}

func TestUsage(t *testing.T) {
	_, stderr, exit := runRulec(t)
	if exit != 2 {
		t.Fatalf("exit = %d, want 2", exit)
	}
	if !strings.Contains(stderr, "usage: rulec") {
		t.Errorf("missing usage text:\n%s", stderr)
	}
}
