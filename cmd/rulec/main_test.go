package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runRulec drives the compiler exactly as main does, capturing both
// streams and the exit code.
func runRulec(t *testing.T, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	var out, errw bytes.Buffer
	exit = run(args, strings.NewReader(""), &out, &errw)
	return out.String(), errw.String(), exit
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverges from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func TestValidRules(t *testing.T) {
	stdout, stderr, exit := runRulec(t, "-vet", filepath.Join("testdata", "valid.rules"))
	if exit != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", exit, stderr)
	}
	if stderr != "" {
		t.Errorf("unexpected stderr:\n%s", stderr)
	}
	checkGolden(t, "valid.golden", stdout)
}

func TestSyntaxError(t *testing.T) {
	stdout, stderr, exit := runRulec(t, filepath.Join("testdata", "syntax_error.rules"))
	if exit != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", exit, stdout)
	}
	if !strings.Contains(stderr, "line 2") {
		t.Errorf("syntax error lost its line number:\n%s", stderr)
	}
	checkGolden(t, "syntax_error.golden", stderr)
}

// TestVetRejectsTable1 seeds one rule per semantic check: Table 1
// violations on temporal and composite events, a cross-transaction
// composite without validity, an unknown consumption policy, an
// undeclared variable, and a duplicate rule name.
func TestVetRejectsTable1(t *testing.T) {
	path := filepath.Join("testdata", "table1_invalid.rules")
	stdout, stderr, exit := runRulec(t, "-vet", path)
	if exit != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", exit, stdout)
	}
	for _, want := range []string{
		"Table 1 rejects immediate condition coupling on a purely-temporal event",
		"Table 1 rejects immediate condition coupling on a composite-1tx event",
		"needs a validity clause",
		`unknown consumption policy "newest"`,
		`undeclared variable "threshold"`,
		`undeclared variable "other"`,
		"duplicate rule name",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("vet output missing %q", want)
		}
	}
	checkGolden(t, "table1_invalid.golden", stderr)
}

// TestVetPassesWithoutFlag confirms -vet is opt-in: the same
// semantically invalid file parses clean without it.
func TestVetPassesWithoutFlag(t *testing.T) {
	_, stderr, exit := runRulec(t, filepath.Join("testdata", "table1_invalid.rules"))
	if exit != 0 {
		t.Fatalf("exit = %d, want 0 (syntax only); stderr:\n%s", exit, stderr)
	}
}

func TestUsage(t *testing.T) {
	_, stderr, exit := runRulec(t)
	if exit != 2 {
		t.Fatalf("exit = %d, want 2", exit)
	}
	if !strings.Contains(stderr, "usage: rulec") {
		t.Errorf("missing usage text:\n%s", stderr)
	}
}
