// rulec is the REACH rule-language compiler front end: it parses rule
// definition files, reports syntax errors with line numbers, and
// prints a summary of each rule — the events it triggers on, its
// coupling modes, priorities, and the composite events it would
// define. With -vet it additionally runs the semantic pass, rejecting
// rules the engine's Table 1 admission matrix would refuse at load
// time: invalid coupling/category pairs, cross-transaction composites
// without a validity interval, unknown consumption policies,
// duplicate rule names, and undeclared variable references.
//
// With -analyze it runs the whole-ruleset interaction analysis over
// every file as one set: the triggering graph (actions raising events
// that fire further rules), termination (cycles, classified by
// coupling mode, plus the static cascade-depth bound for acyclic
// sets), confluence (order-dependent equal-priority pairs), and
// reachability (rules whose event can never be raised). Findings can
// be suppressed per rule with a justified comment in the source:
//
//	# lint:allow termination operators bound this loop via the interlock
//
// -json emits vet and analysis findings as a JSON array for CI and
// editors; -dot writes the triggering graph in Graphviz dot syntax.
//
//	rulec [-vet] [-analyze] [-json] [-dot out.dot] file.rules [file2.rules ...]
//	echo 'rule R { ... };' | rulec -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	reach "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable diagnostic shape shared by -vet
// and -analyze output: file, line, analyzer, message (plus rule and
// severity when known).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Rule     string `json:"rule,omitempty"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Msg      string `json:"message"`
}

type ruleFile struct {
	path  string
	src   string
	decls []*reach.RuleDecl
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rulec", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vet := fs.Bool("vet", false, "run the semantic pass (Table 1, validity, policies, variables)")
	analyze := fs.Bool("analyze", false, "run whole-ruleset interaction analysis (termination, confluence, reachability)")
	jsonOut := fs.Bool("json", false, "emit vet/analysis findings as a JSON array on stdout")
	dotPath := fs.String("dot", "", "with -analyze, write the triggering graph as Graphviz dot to this file (- for stdout)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: rulec [-vet] [-analyze] [-json] [-dot out.dot] <file.rules>... (or - for stdin)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	var files []ruleFile
	exit := 0
	for _, path := range fs.Args() {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(stdin)
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(stderr, "rulec: %v\n", err)
			exit = 1
			continue
		}
		decls, err := reach.ParseRules(string(src))
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		files = append(files, ruleFile{path: path, src: string(src), decls: decls})
	}

	var findings []jsonFinding

	if *vet {
		vetter := reach.NewRuleVetter()
		for _, f := range files {
			diags := vetter.Vet(f.path, f.decls)
			for _, d := range diags {
				findings = append(findings, jsonFinding{
					File: d.File, Line: d.Line, Rule: d.Rule,
					Analyzer: "vet", Severity: "error", Msg: d.Msg,
				})
				exit = 1
			}
			if *jsonOut {
				continue
			}
			if len(diags) > 0 {
				for _, d := range diags {
					fmt.Fprintln(stderr, d)
				}
				continue
			}
			fmt.Fprintf(stdout, "%s: %d rule(s) OK (vetted)\n", f.path, len(f.decls))
			summarize(stdout, f.decls)
		}
	}

	if *analyze {
		az := reach.NewRuleAnalyzer()
		total := 0
		for _, f := range files {
			az.Add(f.path, f.src, f.decls)
			total += len(f.decls)
		}
		res := az.Run(nil)
		errs, warns := 0, 0
		for _, f := range res.Findings {
			sev := f.Severity.String()
			if f.Severity == reach.RuleError {
				errs++
				exit = 1
			} else {
				warns++
			}
			findings = append(findings, jsonFinding{
				File: f.File, Line: f.Line, Rule: f.Rule,
				Analyzer: f.Analyzer, Severity: sev, Msg: f.Msg,
			})
			if !*jsonOut {
				fmt.Fprintln(stderr, f)
			}
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "analyzed %d file(s), %d rule(s): %d error(s), %d warning(s), %d suppressed\n",
				len(files), total, errs, warns, res.Suppressed)
			if res.DepthBound > 0 {
				fmt.Fprintf(stdout, "static cascade-depth bound: %d\n", res.DepthBound)
			}
		}
		if *dotPath != "" {
			if err := writeDOT(*dotPath, res.Graph, stdout); err != nil {
				fmt.Fprintf(stderr, "rulec: %v\n", err)
				exit = 1
			}
		}
	}

	if !*vet && !*analyze {
		for _, f := range files {
			fmt.Fprintf(stdout, "%s: %d rule(s) OK\n", f.path, len(f.decls))
			summarize(stdout, f.decls)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []jsonFinding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "rulec: %v\n", err)
			return 1
		}
	}
	return exit
}

func writeDOT(path string, g *reach.RuleGraph, stdout io.Writer) error {
	if path == "-" {
		return g.DOT(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.DOT(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func summarize(stdout io.Writer, decls []*reach.RuleDecl) {
	for _, d := range decls {
		condMode := d.CondMode
		if condMode == "" {
			condMode = d.ActionMode
		}
		if condMode == "" {
			condMode = "detached (default)"
		}
		actionMode := d.ActionMode
		if actionMode == "" {
			actionMode = "detached (default)"
		}
		fmt.Fprintf(stdout, "  rule %-20s prio %-4d event %-40v cond %s / action %s\n",
			d.Name, d.Prio, d.Event, condMode, actionMode)
		if d.Scope != "" || d.Policy != "" || d.Validity != 0 {
			fmt.Fprintf(stdout, "    composite: scope=%s policy=%s validity=%v\n",
				orDefault(d.Scope, "transaction"), orDefault(d.Policy, "chronicle"), d.Validity)
		}
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
