// rulec is the REACH rule-language compiler front end: it parses rule
// definition files, reports syntax errors with line numbers, and
// prints a summary of each rule — the events it triggers on, its
// coupling modes, priorities, and the composite events it would
// define.
//
//	rulec file.rules [file2.rules ...]
//	echo 'rule R { ... };' | rulec -
package main

import (
	"fmt"
	"io"
	"os"

	reach "repro"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: rulec <file.rules>... (or - for stdin)")
		os.Exit(2)
	}
	exit := 0
	for _, path := range args {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(os.Stdin)
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rulec: %v\n", err)
			exit = 1
			continue
		}
		decls, err := reach.ParseRules(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("%s: %d rule(s) OK\n", path, len(decls))
		for _, d := range decls {
			condMode := d.CondMode
			if condMode == "" {
				condMode = d.ActionMode
			}
			if condMode == "" {
				condMode = "detached (default)"
			}
			actionMode := d.ActionMode
			if actionMode == "" {
				actionMode = "detached (default)"
			}
			fmt.Printf("  rule %-20s prio %-4d event %-40v cond %s / action %s\n",
				d.Name, d.Prio, d.Event, condMode, actionMode)
			if d.Scope != "" || d.Policy != "" || d.Validity != 0 {
				fmt.Printf("    composite: scope=%s policy=%s validity=%v\n",
					orDefault(d.Scope, "transaction"), orDefault(d.Policy, "chronicle"), d.Validity)
			}
		}
	}
	os.Exit(exit)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
