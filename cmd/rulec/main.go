// rulec is the REACH rule-language compiler front end: it parses rule
// definition files, reports syntax errors with line numbers, and
// prints a summary of each rule — the events it triggers on, its
// coupling modes, priorities, and the composite events it would
// define. With -vet it additionally runs the semantic pass, rejecting
// rules the engine's Table 1 admission matrix would refuse at load
// time: invalid coupling/category pairs, cross-transaction composites
// without a validity interval, unknown consumption policies,
// duplicate rule names, and undeclared variable references.
//
//	rulec [-vet] file.rules [file2.rules ...]
//	echo 'rule R { ... };' | rulec -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	reach "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rulec", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vet := fs.Bool("vet", false, "run the semantic pass (Table 1, validity, policies, variables)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: rulec [-vet] <file.rules>... (or - for stdin)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	vetter := reach.NewRuleVetter()
	exit := 0
	for _, path := range fs.Args() {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(stdin)
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(stderr, "rulec: %v\n", err)
			exit = 1
			continue
		}
		decls, err := reach.ParseRules(string(src))
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		if *vet {
			diags := vetter.Vet(path, decls)
			if len(diags) > 0 {
				for _, d := range diags {
					fmt.Fprintln(stderr, d)
				}
				exit = 1
				continue
			}
			fmt.Fprintf(stdout, "%s: %d rule(s) OK (vetted)\n", path, len(decls))
		} else {
			fmt.Fprintf(stdout, "%s: %d rule(s) OK\n", path, len(decls))
		}
		for _, d := range decls {
			condMode := d.CondMode
			if condMode == "" {
				condMode = d.ActionMode
			}
			if condMode == "" {
				condMode = "detached (default)"
			}
			actionMode := d.ActionMode
			if actionMode == "" {
				actionMode = "detached (default)"
			}
			fmt.Fprintf(stdout, "  rule %-20s prio %-4d event %-40v cond %s / action %s\n",
				d.Name, d.Prio, d.Event, condMode, actionMode)
			if d.Scope != "" || d.Policy != "" || d.Validity != 0 {
				fmt.Fprintf(stdout, "    composite: scope=%s policy=%s validity=%v\n",
					orDefault(d.Scope, "transaction"), orDefault(d.Policy, "chronicle"), d.Validity)
			}
		}
	}
	return exit
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
