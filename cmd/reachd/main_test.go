package main

import (
	"bytes"
	"strings"
	"testing"

	reach "repro"
)

// TestREPLSmoke drives the shell end to end over an in-memory system:
// class definition, rule loading, object mutation through a sentried
// method, and the stats/metrics/trace subcommands.
func TestREPLSmoke(t *testing.T) {
	sys, err := reach.Open(reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	script := strings.Join([]string{
		"class River level:int temp:float",
		`rule NonNeg { decl River *r, int x; event after r->update_level(x); cond imm x < 0; action imm abort "neg"; };`,
		"new River as Rhine",
		"invoke Rhine update_level 42",
		"get Rhine level",
		"roots",
		"stats",
		"stats metrics",
		"stats trace 3",
		"stats bogus",
		"frobnicate",
		"quit",
	}, "\n")
	var out bytes.Buffer
	repl(sys, strings.NewReader(script), &out)
	got := out.String()

	for _, want := range []string{
		"class River registered (monitored, 2 update methods)",
		"rule loaded",
		"created",
		"42",
		"Rhine",
		"events=",
		"sentry overhead:",
		// stats metrics → Prometheus exposition of the shared registry.
		"# TYPE reach_events_total counter",
		"reach_sentry_checks_total",
		// stats trace → the invoke's lifecycle trace.
		"detect",
		"condition-eval",
		"usage: stats [metrics | trace <n>]",
		`unknown command "frobnicate"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full output:\n%s", got)
	}
}

// TestREPLRulesGraph loads a two-rule chain and dumps the live
// engine's triggering graph: nodes, the edge between them, the
// cycle-free summary with its static cascade-depth bound.
func TestREPLRulesGraph(t *testing.T) {
	sys, err := reach.Open(reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	script := strings.Join([]string{
		"class Tank level:int",
		`rule Fill { prio 5; decl Tank *t, int x; event after t->update_level(x); action imm t->update_level(x); };`,
		"rules graph",
		"rules",
		"quit",
	}, "\n")
	var out bytes.Buffer
	repl(sys, strings.NewReader(script), &out)
	got := out.String()

	for _, want := range []string{
		"triggering graph: 1 rule(s), 1 edge(s)",
		"node Fill",
		"prio=5",
		"[cycle]",
		"edge Fill -> Fill on method:Tank.update_level:after (action)",
		"cycle [error] Fill -> Fill",
		"usage: rules graph",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rules graph output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full output:\n%s", got)
	}
}

// TestREPLMultilineRule checks the continuation path: a rule spread
// over several lines is buffered until the closing "};".
func TestREPLMultilineRule(t *testing.T) {
	sys, err := reach.Open(reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	script := strings.Join([]string{
		"class Tank level:int",
		"rule Watch {",
		"decl Tank *t, int x;",
		"event after t->update_level(x);",
		"cond imm x > 100;",
		`action imm abort "overflow";`,
		"};",
		"new Tank as T1",
		"invoke T1 update_level 101",
		"get T1 level",
		"quit",
	}, "\n")
	var out bytes.Buffer
	repl(sys, strings.NewReader(script), &out)
	got := out.String()

	if !strings.Contains(got, "rule loaded") {
		t.Errorf("multi-line rule not loaded:\n%s", got)
	}
	if !strings.Contains(got, "overflow") {
		t.Errorf("veto rule did not fire:\n%s", got)
	}
	// The vetoed write must not be visible.
	if !strings.Contains(got, "0\n") {
		t.Errorf("vetoed update leaked a value:\n%s", got)
	}
}
