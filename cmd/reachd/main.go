// reachd is an interactive shell over a REACH database: define
// monitored classes, create and name objects, mutate them through
// sentried update methods, load ECA rules in the REACH rule language,
// and query with OQL — with every command's events flowing through
// the integrated rule engine.
//
//	reachd -dir /tmp/plantdb
//
// Commands (one per line; 'help' lists them):
//
//	class River level:int temp:float name:string
//	new River as Rhine
//	invoke Rhine update_level 42
//	rule <rule text ...>;           (reads until a line ending in };)
//	load rules.rules
//	query select r from River r where r.level < 37
//	index River level
//	get Rhine level | set Rhine temp 26.5
//	roots | classes | stats | history | quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	reach "repro"
	"repro/internal/oodb"
)

func main() {
	dir := flag.String("dir", "", "storage directory (empty = in-memory)")
	flag.Parse()

	sys, err := reach.Open(reach.Options{Dir: *dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reachd:", err)
		os.Exit(1)
	}
	defer sys.Close()
	fmt.Println("REACH shell — an integrated active OODBMS. Type 'help'.")
	repl(sys, bufio.NewScanner(os.Stdin))
}

func repl(sys *reach.System, sc *bufio.Scanner) {
	var ruleBuf strings.Builder
	inRule := false
	for {
		if inRule {
			fmt.Print("... ")
		} else {
			fmt.Print("reach> ")
		}
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if inRule {
			ruleBuf.WriteString(line)
			ruleBuf.WriteString("\n")
			if strings.HasSuffix(line, "};") {
				inRule = false
				if _, err := sys.LoadRules(ruleBuf.String()); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Println("rule loaded")
				}
				ruleBuf.Reset()
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit":
			return
		case "help":
			help()
		case "class":
			if err := defineClass(sys, args); err != nil {
				fmt.Println("error:", err)
			}
		case "new":
			if err := newObject(sys, args); err != nil {
				fmt.Println("error:", err)
			}
		case "set", "get", "invoke", "delete":
			if err := objectCmd(sys, cmd, args); err != nil {
				fmt.Println("error:", err)
			}
		case "rule":
			rest := strings.TrimSpace(strings.TrimPrefix(line, "rule"))
			ruleBuf.WriteString("rule " + rest + "\n")
			if strings.HasSuffix(rest, "};") {
				if _, err := sys.LoadRules(ruleBuf.String()); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Println("rule loaded")
				}
				ruleBuf.Reset()
			} else {
				inRule = true
			}
		case "load":
			if len(args) != 1 {
				fmt.Println("usage: load <file>")
				continue
			}
			src, err := os.ReadFile(args[0])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			loaded, err := sys.LoadRules(string(src))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("loaded %d rule(s)\n", len(loaded.Rules))
		case "query":
			q := strings.TrimSpace(strings.TrimPrefix(line, "query"))
			if err := runQuery(sys, q); err != nil {
				fmt.Println("error:", err)
			}
		case "index":
			if len(args) != 2 {
				fmt.Println("usage: index <Class> <attr>")
				continue
			}
			if _, err := sys.Query.CreateIndex(args[0], args[1]); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("index on %s.%s created (maintained by ECA rules)\n", args[0], args[1])
			}
		case "roots":
			for _, n := range sys.DB.RootNames() {
				fmt.Println(" ", n)
			}
		case "classes":
			for _, n := range sys.DB.Dictionary().Classes() {
				fmt.Println(" ", n)
			}
		case "stats":
			st := sys.Engine.Stats()
			fmt.Printf("  events=%d immediate=%d deferred=%d detached=%d composites=%d\n",
				st.Events, st.ImmediateFired, st.DeferredFired, st.DetachedFired, st.CompositesDetected)
			useful, useless, pot := sys.Engine.Dispatcher().Stats()
			fmt.Printf("  sentry overhead: useful=%d useless=%d potentially-useful=%d\n", useful, useless, pot)
			ss := sys.DB.StorageStats()
			fmt.Printf("  storage: pages=%d buffer hits/misses=%d/%d wal-syncs=%d\n",
				ss.Pages, ss.BufferHits, ss.BufferMiss, ss.WALSyncs)
		case "history":
			for _, en := range sys.Engine.GlobalHistory() {
				fmt.Printf("  #%d txn=%d %s\n", en.Seq, en.Txn, en.Key)
			}
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}

func help() {
	fmt.Print(`  class <Name> <attr:type>...   define a monitored class (types: int float string bool ref)
  new <Class> [as <root>]       create an object, optionally naming it
  get <root> <attr>             read an attribute
  set <root> <attr> <value>     write an attribute (raises a state-change event)
  invoke <root> update_<attr> <value>   sentried update method
  delete <root>                 delete an object (raises the destructor event)
  rule <REACH rule text>;       define a rule inline (multi-line until };)
  load <file>                   load a .rules file
  query select v from Class v [where ...]   OQL query
  index <Class> <attr>          create an ECA-maintained hash index
  roots | classes | stats | history | quit
`)
}

func defineClass(sys *reach.System, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: class <Name> <attr:type>...")
	}
	name := args[0]
	var attrs []reach.Attr
	for _, spec := range args[1:] {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("attribute %q must be name:type", spec)
		}
		var t oodb.AttrType
		switch parts[1] {
		case "int":
			t = reach.TInt
		case "float":
			t = reach.TFloat
		case "string":
			t = reach.TString
		case "bool":
			t = reach.TBool
		case "ref":
			t = reach.TRef
		default:
			return fmt.Errorf("unknown type %q", parts[1])
		}
		attrs = append(attrs, reach.Attr{Name: parts[0], Type: t})
	}
	cls := reach.NewClass(name, attrs...)
	cls.Monitored = true
	// A sentried update method per attribute, so rules can trap
	// `after obj->update_<attr>(x)`.
	for _, a := range attrs {
		attr := a.Name
		cls.Method("update_"+attr, func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("update_%s needs one argument", attr)
			}
			return nil, ctx.Set(self, attr, args[0])
		})
	}
	if err := sys.RegisterClass(cls); err != nil {
		return err
	}
	fmt.Printf("class %s registered (monitored, %d update methods)\n", name, len(attrs))
	return nil
}

func newObject(sys *reach.System, args []string) error {
	if len(args) != 1 && !(len(args) == 3 && args[1] == "as") {
		return fmt.Errorf("usage: new <Class> [as <root>]")
	}
	tx := sys.Begin()
	obj, err := sys.DB.NewObject(tx, args[0])
	if err != nil {
		tx.Abort()
		return err
	}
	if len(args) == 3 {
		if err := sys.DB.SetRoot(tx, args[2], obj); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	fmt.Printf("created %v\n", obj)
	return nil
}

func objectCmd(sys *reach.System, cmd string, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: %s <root> ...", cmd)
	}
	tx := sys.Begin()
	obj, err := sys.DB.Root(tx, args[0])
	if err != nil {
		tx.Abort()
		return err
	}
	switch cmd {
	case "get":
		if len(args) != 2 {
			tx.Abort()
			return fmt.Errorf("usage: get <root> <attr>")
		}
		v, err := sys.DB.Get(tx, obj, args[1])
		if err != nil {
			tx.Abort()
			return err
		}
		fmt.Printf("%v\n", v)
	case "set":
		if len(args) != 3 {
			tx.Abort()
			return fmt.Errorf("usage: set <root> <attr> <value>")
		}
		if err := sys.DB.Set(tx, obj, args[1], parseValue(args[2])); err != nil {
			tx.Abort()
			return err
		}
	case "invoke":
		if len(args) < 2 {
			tx.Abort()
			return fmt.Errorf("usage: invoke <root> <method> [args...]")
		}
		callArgs := make([]any, 0, len(args)-2)
		for _, a := range args[2:] {
			callArgs = append(callArgs, parseValue(a))
		}
		res, err := sys.DB.Invoke(tx, obj, args[1], callArgs...)
		if err != nil {
			tx.Abort()
			return err
		}
		if res != nil {
			fmt.Printf("-> %v\n", res)
		}
	case "delete":
		if err := sys.DB.Delete(tx, obj); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

func runQuery(sys *reach.System, q string) error {
	tx := sys.Begin()
	defer tx.Commit()
	objs, err := sys.Query.OQL(tx, q)
	if err != nil {
		return err
	}
	for _, obj := range objs {
		fmt.Printf("  %v {", obj)
		for i, a := range obj.Class().Attrs() {
			v, _ := sys.DB.Get(tx, obj, a.Name)
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s: %v", a.Name, v)
		}
		fmt.Println("}")
	}
	fmt.Printf("  (%d object(s))\n", len(objs))
	return nil
}

func parseValue(s string) any {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	if s == "true" {
		return true
	}
	if s == "false" {
		return false
	}
	return strings.Trim(s, `"`)
}
