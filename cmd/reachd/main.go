// reachd is an interactive shell over a REACH database: define
// monitored classes, create and name objects, mutate them through
// sentried update methods, load ECA rules in the REACH rule language,
// and query with OQL — with every command's events flowing through
// the integrated rule engine.
//
//	reachd -dir /tmp/plantdb -admin localhost:7047
//
// Commands (one per line; 'help' lists them):
//
//	class River level:int temp:float name:string
//	new River as Rhine
//	invoke Rhine update_level 42
//	rule <rule text ...>;           (reads until a line ending in };)
//	load rules.rules
//	query select r from River r where r.level < 37
//	index River level
//	get Rhine level | set Rhine temp 26.5
//	checkpoint                      (force a fuzzy checkpoint now)
//	roots | classes | stats [metrics|trace <n>] | health | slowlog | history | quit
//
// SIGINT/SIGTERM shut down gracefully: the overload governor refuses
// new admissions, the rule executor is drained, a final checkpoint is
// taken, and the store is closed cleanly.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	reach "repro"
	"repro/internal/oodb"
)

func main() {
	dir := flag.String("dir", "", "storage directory (empty = in-memory)")
	admin := flag.String("admin", "", "observability HTTP listen address, e.g. localhost:7047 (empty = disabled)")
	workers := flag.Int("workers", 0, "detached-rule executor worker pool size (0 = default 8)")
	queue := flag.Int("queue", 0, "detached-rule executor queue capacity (0 = default 256)")
	shed := flag.Bool("shed", false, "shed detached rule work when the executor queue is full instead of blocking")
	ruleTimeout := flag.Duration("rule-timeout", 0, "default per-attempt deadline for detached rules (0 = none)")
	ruleRetries := flag.Int("rule-retries", 0, "default retry budget for retriable rule aborts (0 = default 3, negative disables)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures before a rule's circuit breaker trips (0 = default 5, negative disables)")
	slowThreshold := flag.Duration("slow-threshold", 250*time.Millisecond, "promote traces slower than this into the slow log (0 disables)")
	slowCap := flag.Int("slow-log", 0, "slow-log capacity (0 = default 64)")
	noGroupCommit := flag.Bool("no-group-commit", false, "fsync every commit individually instead of batching concurrent forces (ablation / debugging)")
	gov := flag.Bool("governor", true, "enable the overload governor (false = ablation: no admission control or shedding)")
	admitDeadline := flag.Duration("admit-deadline", 0, "how long a new write transaction may queue while shedding before ErrOverloaded (0 = default 250ms)")
	flag.Parse()

	engineOpts := reach.EngineOptions{
		Workers:          *workers,
		Queue:            *queue,
		RuleTimeout:      *ruleTimeout,
		RuleRetries:      *ruleRetries,
		BreakerThreshold: *breakerThreshold,
		SlowLogThreshold: *slowThreshold,
		SlowLogCapacity:  *slowCap,
	}
	if *shed {
		engineOpts.Overload = reach.OverloadShed
	}
	opts := reach.Options{Dir: *dir, Engine: engineOpts}
	opts.DB.Storage.DisableGroupCommit = *noGroupCommit
	opts.Governor.Disabled = !*gov
	opts.Governor.AdmitDeadline = *admitDeadline
	sys, err := reach.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reachd:", err)
		os.Exit(1)
	}
	defer sys.Close()
	// Graceful shutdown on SIGINT/SIGTERM: the governor refuses new
	// admissions, the rule executor drains (bounded), a final
	// checkpoint covers everything the drained rules wrote, and only
	// then is the store closed — so the next start recovers instantly.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "\nreachd: %v: refusing admissions, draining rules, checkpointing, closing\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := sys.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "reachd: shutdown:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()
	if *admin != "" {
		srv, addr, err := sys.Admin().Serve(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reachd: admin:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("admin: http://%s/  (/metrics /stats /health /traces /slowlog /checkpoint /failpoints /rules/deadletter /rules/breakers /debug/pprof)\n", addr)
	}
	fmt.Printf("build: %s %s (%s)\n", sys.Build.Module, sys.Build.Version, sys.Build.GoVersion)
	fmt.Println("REACH shell — an integrated active OODBMS. Type 'help'.")
	repl(sys, os.Stdin, os.Stdout)
}

func repl(sys *reach.System, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	var ruleBuf strings.Builder
	inRule := false
	for {
		if inRule {
			fmt.Fprint(out, "... ")
		} else {
			fmt.Fprint(out, "reach> ")
		}
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if inRule {
			ruleBuf.WriteString(line)
			ruleBuf.WriteString("\n")
			if strings.HasSuffix(line, "};") {
				inRule = false
				if _, err := sys.LoadRules(ruleBuf.String()); err != nil {
					fmt.Fprintln(out, "error:", err)
				} else {
					fmt.Fprintln(out, "rule loaded")
				}
				ruleBuf.Reset()
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit":
			return
		case "help":
			help(out)
		case "class":
			if err := defineClass(sys, out, args); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case "new":
			if err := newObject(sys, out, args); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case "set", "get", "invoke", "delete":
			if err := objectCmd(sys, out, cmd, args); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case "rules":
			rulesCmd(sys, out, args)
		case "rule":
			rest := strings.TrimSpace(strings.TrimPrefix(line, "rule"))
			ruleBuf.WriteString("rule " + rest + "\n")
			if strings.HasSuffix(rest, "};") {
				if _, err := sys.LoadRules(ruleBuf.String()); err != nil {
					fmt.Fprintln(out, "error:", err)
				} else {
					fmt.Fprintln(out, "rule loaded")
				}
				ruleBuf.Reset()
			} else {
				inRule = true
			}
		case "load":
			if len(args) != 1 {
				fmt.Fprintln(out, "usage: load <file>")
				continue
			}
			src, err := os.ReadFile(args[0])
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			loaded, err := sys.LoadRules(string(src))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "loaded %d rule(s)\n", len(loaded.Rules))
		case "query":
			q := strings.TrimSpace(strings.TrimPrefix(line, "query"))
			if err := runQuery(sys, out, q); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case "index":
			if len(args) != 2 {
				fmt.Fprintln(out, "usage: index <Class> <attr>")
				continue
			}
			if _, err := sys.Query.CreateIndex(args[0], args[1]); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintf(out, "index on %s.%s created (maintained by ECA rules)\n", args[0], args[1])
			}
		case "roots":
			for _, n := range sys.DB.RootNames() {
				fmt.Fprintln(out, " ", n)
			}
		case "classes":
			for _, n := range sys.DB.Dictionary().Classes() {
				fmt.Fprintln(out, " ", n)
			}
		case "stats":
			statsCmd(sys, out, args)
		case "health":
			healthCmd(sys, out)
		case "slowlog":
			slowLogCmd(sys, out, args)
		case "deadletter":
			deadLetterCmd(sys, out, args)
		case "breakers":
			for _, b := range sys.Engine.Breakers() {
				state := "closed"
				if b.Open {
					state = "OPEN since " + b.Since.Format("15:04:05")
				}
				fmt.Fprintf(out, "  %-24s %-20s consecutive=%d last=%s\n", b.Rule, state, b.Consecutive, b.LastErr)
			}
			if len(sys.Engine.Breakers()) == 0 {
				fmt.Fprintln(out, "  (no breaker records)")
			}
		case "rearm":
			if len(args) != 1 {
				fmt.Fprintln(out, "usage: rearm <rule>")
				continue
			}
			if sys.Engine.RearmRule(args[0]) {
				fmt.Fprintf(out, "breaker for %s re-armed\n", args[0])
			} else {
				fmt.Fprintf(out, "rule %q has no breaker record\n", args[0])
			}
		case "checkpoint":
			if err := sys.DB.Checkpoint(); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				h := sys.DB.CheckpointHealth()
				fmt.Fprintf(out, "checkpoint complete: redoLSN=%d endLSN=%d (ok=%d failed=%d)\n",
					h.LastRedoLSN, h.LastEndLSN, h.Checkpoints, h.Failures)
			}
		case "drain":
			if err := drainCmd(sys, args); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "drained: detached executor idle, new spawns refused")
			}
		case "history":
			for _, en := range sys.Engine.GlobalHistory() {
				fmt.Fprintf(out, "  #%d txn=%d %s\n", en.Seq, en.Txn, en.Key)
			}
		default:
			fmt.Fprintf(out, "unknown command %q (try 'help')\n", cmd)
		}
	}
}

// rulesCmd surfaces the live engine's whole-ruleset interaction
// analysis: 'rules graph' dumps the triggering graph — nodes, edges,
// cycles, and the static cascade-depth bound — for operators debugging
// a misbehaving rule set.
func rulesCmd(sys *reach.System, out io.Writer, args []string) {
	if len(args) != 1 || args[0] != "graph" {
		fmt.Fprintln(out, "usage: rules graph")
		return
	}
	res := sys.RuleAnalysis()
	g := res.Graph
	fmt.Fprintf(out, "  triggering graph: %d rule(s), %d edge(s)\n", len(g.Nodes), len(g.Edges))
	for _, n := range g.Nodes {
		marks := ""
		if n.InCycle {
			marks += " [cycle]"
		}
		if n.Unreachable {
			marks += " [unreachable]"
		}
		fmt.Fprintf(out, "  node %-24s prio=%d cond=%v action=%v%s\n",
			n.Name(), n.Decl.Prio, n.Cond, n.Action, marks)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(out, "  edge %s -> %s on %s (%s)\n", e.From, e.To, e.Key, e.Via)
	}
	if len(res.Cycles) == 0 {
		fmt.Fprintf(out, "  no cycles; static cascade-depth bound %d\n", res.DepthBound)
	}
	for _, c := range res.Cycles {
		fmt.Fprintf(out, "  cycle [%v] %s\n", c.Severity, c)
	}
	for _, f := range res.Findings {
		fmt.Fprintf(out, "  finding %s\n", f)
	}
}

// deadLetterCmd lists or clears the executor's dead-letter queue.
func deadLetterCmd(sys *reach.System, out io.Writer, args []string) {
	if len(args) == 1 && args[0] == "clear" {
		fmt.Fprintf(out, "cleared %d dead-letter entries\n", sys.Engine.ClearDeadLetters())
		return
	}
	if len(args) != 0 {
		fmt.Fprintln(out, "usage: deadletter [clear]")
		return
	}
	letters := sys.Engine.DeadLetters()
	if len(letters) == 0 {
		fmt.Fprintln(out, "  (dead-letter queue empty)")
		return
	}
	for _, dl := range letters {
		fmt.Fprintf(out, "  %s rule=%s event=%s seq=%d attempts=%d reason=%s err=%s\n",
			dl.Time.Format("15:04:05"), dl.Rule, dl.EventKey, dl.Seq, dl.Attempts, dl.Reason, dl.Err)
	}
}

// drainCmd flips the engine into shutdown mode, bounded by an
// optional timeout argument (e.g. "drain 5s").
func drainCmd(sys *reach.System, args []string) error {
	ctx := context.Background()
	if len(args) == 1 {
		d, err := time.ParseDuration(args[0])
		if err != nil {
			return fmt.Errorf("usage: drain [timeout]: %w", err)
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	return sys.Drain(ctx)
}

// slowLogCmd lists, clears, or re-thresholds the slow-transaction log.
func slowLogCmd(sys *reach.System, out io.Writer, args []string) {
	sl := sys.Engine.SlowLog()
	switch {
	case len(args) == 1 && args[0] == "clear":
		fmt.Fprintf(out, "cleared %d slow-log entries\n", sl.Clear())
		return
	case len(args) == 2 && args[0] == "threshold":
		d, err := time.ParseDuration(args[1])
		if err != nil {
			fmt.Fprintln(out, "usage: slowlog threshold <duration>")
			return
		}
		sl.SetThreshold(d)
		fmt.Fprintf(out, "slow-log threshold set to %v\n", d)
		return
	case len(args) != 0:
		fmt.Fprintln(out, "usage: slowlog [clear | threshold <duration>]")
		return
	}
	fmt.Fprintf(out, "  threshold=%v entries=%d\n", sl.Threshold(), sl.Len())
	for _, e := range sl.Snapshot() {
		total := time.Duration(e.TotalNS)
		covered := time.Duration(e.CoveredNS)
		pct := 0.0
		if e.TotalNS > 0 {
			pct = 100 * float64(e.CoveredNS) / float64(e.TotalNS)
		}
		fmt.Fprintf(out, "  trace %d root=%s total=%v attributed=%v (%.0f%%)\n",
			e.Trace.ID, e.Trace.Root, total, covered, pct)
		for stage, ns := range e.AttributedNS {
			fmt.Fprintf(out, "    %-18s %v\n", stage, time.Duration(ns))
		}
	}
	if sl.Len() == 0 {
		fmt.Fprintln(out, "  (no slow traces)")
	}
}

// healthCmd prints the overload governor's view: overall state, each
// registered resource against its watermarks, and shed/transition
// counters — the same data the admin /health endpoint serves as JSON.
func healthCmd(sys *reach.System, out io.Writer) {
	snap := sys.Governor.Snapshot()
	status := snap.State
	if snap.Disabled {
		status += " (governor disabled)"
	}
	if snap.Shutdown {
		status += " (shutting down)"
	}
	fmt.Fprintf(out, "  state: %s\n", status)
	for _, r := range snap.Resources {
		fmt.Fprintf(out, "  %-22s %-10d [degraded>%d shedding>%d read-only>%d] %s\n",
			r.Name, r.Value, r.Levels.Degraded, r.Levels.Shedding, r.Levels.ReadOnly, r.State)
	}
	fmt.Fprintf(out, "  sheds: detached=%d deferred=%d writer=%d\n",
		snap.Sheds["detached"], snap.Sheds["deferred"], snap.Sheds["writer"])
	fmt.Fprintf(out, "  transitions: healthy=%d degraded=%d shedding=%d read-only=%d\n",
		snap.Transitions["healthy"], snap.Transitions["degraded"],
		snap.Transitions["shedding"], snap.Transitions["read-only"])
}

// statsCmd prints the summary counters, the full Prometheus exposition
// ("stats metrics"), or recent lifecycle traces ("stats trace <n>").
func statsCmd(sys *reach.System, out io.Writer, args []string) {
	if len(args) == 0 {
		st := sys.Engine.Stats()
		fmt.Fprintf(out, "  events=%d immediate=%d deferred=%d detached=%d composites=%d\n",
			st.Events, st.ImmediateFired, st.DeferredFired, st.DetachedFired, st.CompositesDetected)
		useful, useless, pot := sys.Engine.Dispatcher().Stats()
		fmt.Fprintf(out, "  sentry overhead: useful=%d useless=%d potentially-useful=%d\n", useful, useless, pot)
		ss := sys.DB.StorageStats()
		fmt.Fprintf(out, "  storage: pages=%d buffer hits/misses=%d/%d wal-syncs=%d\n",
			ss.Pages, ss.BufferHits, ss.BufferMiss, ss.WALSyncs)
		fmt.Fprintf(out, "  group commit: requests=%d batches=%d batch-highwater=%d\n",
			ss.GroupCommitRequests, ss.GroupCommitBatches, ss.GroupBatchHighwater)
		fmt.Fprintf(out, "  wal: segments=%d bytes=%d rotations=%d prunes=%d\n",
			ss.WALSegments, ss.WALSegmentBytes, ss.WALRotations, ss.WALPrunes)
		degraded := ""
		if ss.CheckpointDegraded {
			degraded = " DEGRADED"
		}
		fmt.Fprintf(out, "  checkpoints: ok=%d failed=%d redo-lsn=%d%s\n",
			ss.Checkpoints, ss.CheckpointFailures, ss.LastRedoLSN, degraded)
		if ss.LastCheckpointError != "" {
			fmt.Fprintf(out, "  last checkpoint error: %s\n", ss.LastCheckpointError)
		}
		fmt.Fprintf(out, "  recovery: segments scanned/skipped=%d/%d records scanned/replayed=%d/%d\n",
			ss.RecoverySegmentsScanned, ss.RecoverySegmentsSkipped,
			ss.RecoveryRecordsScanned, ss.RecoveryRecordsReplayed)
		return
	}
	switch args[0] {
	case "metrics":
		if err := sys.Metrics.WritePrometheus(out); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	case "trace":
		n := 5
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil || v <= 0 {
				fmt.Fprintln(out, "usage: stats trace <n>")
				return
			}
			n = v
		}
		traces := sys.Tracer.Recent(n)
		if len(traces) == 0 {
			fmt.Fprintln(out, "  (no traces yet)")
			return
		}
		for _, tr := range traces {
			fmt.Fprintf(out, "  trace %d root=%s spans=%d\n", tr.ID, tr.Root, len(tr.Spans))
			for _, sp := range tr.Spans {
				fmt.Fprintf(out, "    %-16s %-24s +%-12s %s\n",
					sp.Stage, sp.Key, sp.Start.Sub(tr.Start), sp.Dur)
			}
		}
	default:
		fmt.Fprintln(out, "usage: stats [metrics | trace <n>]")
	}
}

func help(out io.Writer) {
	fmt.Fprint(out, `  class <Name> <attr:type>...   define a monitored class (types: int float string bool ref)
  new <Class> [as <root>]       create an object, optionally naming it
  get <root> <attr>             read an attribute
  set <root> <attr> <value>     write an attribute (raises a state-change event)
  invoke <root> update_<attr> <value>   sentried update method
  delete <root>                 delete an object (raises the destructor event)
  rule <REACH rule text>;       define a rule inline (multi-line until };)
  load <file>                   load a .rules file
  query select v from Class v [where ...]   OQL query
  index <Class> <attr>          create an ECA-maintained hash index
  stats                         engine / sentry / storage counters
  stats metrics                 full metric registry (Prometheus text)
  stats trace <n>               last n event-lifecycle traces
  health                        overload governor state, resource watermarks, shed counters
  slowlog [clear | threshold <dur>]   slow-transaction log with latency attribution
  deadletter [clear]            inspect / empty the rule dead-letter queue
  rules graph                   triggering graph, cycles, cascade-depth bound
  breakers                      per-rule circuit breaker states
  rearm <rule>                  close a tripped rule's circuit breaker
  drain [timeout]               refuse new detached spawns, wait for in-flight rules
  checkpoint                    take a fuzzy checkpoint (flush + prune WAL segments)
  roots | classes | history | quit
`)
}

func defineClass(sys *reach.System, out io.Writer, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: class <Name> <attr:type>...")
	}
	name := args[0]
	var attrs []reach.Attr
	for _, spec := range args[1:] {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("attribute %q must be name:type", spec)
		}
		var t oodb.AttrType
		switch parts[1] {
		case "int":
			t = reach.TInt
		case "float":
			t = reach.TFloat
		case "string":
			t = reach.TString
		case "bool":
			t = reach.TBool
		case "ref":
			t = reach.TRef
		default:
			return fmt.Errorf("unknown type %q", parts[1])
		}
		attrs = append(attrs, reach.Attr{Name: parts[0], Type: t})
	}
	cls := reach.NewClass(name, attrs...)
	cls.Monitored = true
	// A sentried update method per attribute, so rules can trap
	// `after obj->update_<attr>(x)`.
	for _, a := range attrs {
		attr := a.Name
		cls.Method("update_"+attr, func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("update_%s needs one argument", attr)
			}
			return nil, ctx.Set(self, attr, args[0])
		})
	}
	if err := sys.RegisterClass(cls); err != nil {
		return err
	}
	fmt.Fprintf(out, "class %s registered (monitored, %d update methods)\n", name, len(attrs))
	return nil
}

// beginWrite starts an admission-controlled transaction for a write
// command. Under overload the governor may park the admission briefly
// and then refuse it; the shell surfaces that as a retryable error
// rather than silently queueing work the system cannot absorb.
func beginWrite(sys *reach.System) (*reach.Txn, error) {
	tx, err := sys.BeginTxn()
	if err != nil {
		if errors.Is(err, reach.ErrOverloaded) {
			return nil, fmt.Errorf("%w (check 'health'; retry with backoff)", err)
		}
		return nil, err
	}
	return tx, nil
}

func newObject(sys *reach.System, out io.Writer, args []string) error {
	if len(args) != 1 && !(len(args) == 3 && args[1] == "as") {
		return fmt.Errorf("usage: new <Class> [as <root>]")
	}
	tx, err := beginWrite(sys)
	if err != nil {
		return err
	}
	obj, err := sys.DB.NewObject(tx, args[0])
	if err != nil {
		_ = tx.Abort() // secondary to the reported error
		return err
	}
	if len(args) == 3 {
		if err := sys.DB.SetRoot(tx, args[2], obj); err != nil {
			_ = tx.Abort() // secondary to the reported error
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	fmt.Fprintf(out, "created %v\n", obj)
	return nil
}

func objectCmd(sys *reach.System, out io.Writer, cmd string, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: %s <root> ...", cmd)
	}
	var tx *reach.Txn
	var err error
	if cmd == "get" {
		tx = sys.Begin() // reads stay admitted even when shedding writers
	} else if tx, err = beginWrite(sys); err != nil {
		return err
	}
	obj, err := sys.DB.Root(tx, args[0])
	if err != nil {
		_ = tx.Abort() // secondary to the reported error
		return err
	}
	switch cmd {
	case "get":
		if len(args) != 2 {
			_ = tx.Abort() // secondary to the reported error
			return fmt.Errorf("usage: get <root> <attr>")
		}
		v, err := sys.DB.Get(tx, obj, args[1])
		if err != nil {
			_ = tx.Abort() // secondary to the reported error
			return err
		}
		fmt.Fprintf(out, "%v\n", v)
	case "set":
		if len(args) != 3 {
			_ = tx.Abort() // secondary to the reported error
			return fmt.Errorf("usage: set <root> <attr> <value>")
		}
		if err := sys.DB.Set(tx, obj, args[1], parseValue(args[2])); err != nil {
			_ = tx.Abort() // secondary to the reported error
			return err
		}
	case "invoke":
		if len(args) < 2 {
			_ = tx.Abort() // secondary to the reported error
			return fmt.Errorf("usage: invoke <root> <method> [args...]")
		}
		callArgs := make([]any, 0, len(args)-2)
		for _, a := range args[2:] {
			callArgs = append(callArgs, parseValue(a))
		}
		res, err := sys.DB.Invoke(tx, obj, args[1], callArgs...)
		if err != nil {
			_ = tx.Abort() // secondary to the reported error
			return err
		}
		if res != nil {
			fmt.Fprintf(out, "-> %v\n", res)
		}
	case "delete":
		if err := sys.DB.Delete(tx, obj); err != nil {
			_ = tx.Abort() // secondary to the reported error
			return err
		}
	}
	return tx.Commit()
}

func runQuery(sys *reach.System, out io.Writer, q string) error {
	tx := sys.Begin()
	defer tx.Commit()
	objs, err := sys.Query.OQL(tx, q)
	if err != nil {
		return err
	}
	for _, obj := range objs {
		fmt.Fprintf(out, "  %v {", obj)
		for i, a := range obj.Class().Attrs() {
			v, _ := sys.DB.Get(tx, obj, a.Name)
			if i > 0 {
				fmt.Fprint(out, ", ")
			}
			fmt.Fprintf(out, "%s: %v", a.Name, v)
		}
		fmt.Fprintln(out, "}")
	}
	fmt.Fprintf(out, "  (%d object(s))\n", len(objs))
	return nil
}

func parseValue(s string) any {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	if s == "true" {
		return true
	}
	if s == "false" {
		return false
	}
	return strings.Trim(s, `"`)
}
