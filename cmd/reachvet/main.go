// reachvet runs the REACH-specific static-analysis suite over the
// module: clockusage, lockdiscipline, rawatomics, couplingtable, and
// errsink (see internal/lint). It prints file:line:col diagnostics
// and exits nonzero when any finding survives the //lint:allow
// suppressions.
//
//	reachvet [-only a,b] [-list] [-json] [dir ...]
//
// With no directories it analyzes every package of the module
// containing the working directory. -json emits the findings as a
// JSON array of {file, line, col, analyzer, message} objects for CI
// and editor integration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reachvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	typeErrs := fs.Bool("typeerrs", false, "also print soft type-checking errors (debugging)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(stderr, "reachvet: unknown analyzer %q\n", n)
			return 2
		}
		suite = sel
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "reachvet: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(stderr, "reachvet: %v\n", err)
		return 2
	}
	var pkgs []*lint.Package
	if fs.NArg() == 0 {
		pkgs, err = loader.LoadAll()
	} else {
		for _, dir := range fs.Args() {
			p, perr := loader.LoadDir(dir)
			if perr != nil {
				err = perr
				break
			}
			pkgs = append(pkgs, p)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "reachvet: %v\n", err)
		return 2
	}
	if *typeErrs {
		for _, p := range pkgs {
			for _, e := range p.TypeErrs {
				fmt.Fprintf(stderr, "reachvet: typecheck %s: %v\n", p.Path, e)
			}
		}
	}
	findings := lint.Run(pkgs, suite)
	if *jsonOut {
		type jsonFinding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Msg      string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Msg:      f.Msg,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "reachvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "reachvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
