package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errw bytes.Buffer
	if exit := run([]string{"-list"}, &out, &errw); exit != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", exit, errw.String())
	}
	for _, name := range []string{"clockusage", "lockdiscipline", "rawatomics", "couplingtable", "errsink"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errw bytes.Buffer
	if exit := run([]string{"-only", "nonesuch"}, &out, &errw); exit != 2 {
		t.Fatalf("exit = %d, want 2", exit)
	}
	if !strings.Contains(errw.String(), `unknown analyzer "nonesuch"`) {
		t.Errorf("missing diagnostic:\n%s", errw.String())
	}
}

// TestJSONOutput verifies -json emits a well-formed array (empty when
// the analyzed package is clean, as lint's own testdata-free packages
// are expected to be after TestModuleIsClean).
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks packages")
	}
	var out, errw bytes.Buffer
	exit := run([]string{"-json", "../../internal/event"}, &out, &errw)
	if exit != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s%s", exit, out.String(), errw.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean package produced findings: %v", findings)
	}
}

// TestModuleIsClean runs the full suite over this repository — the
// same invariant `make lint` enforces, kept inside `go test ./...` so
// a finding (or an unjustified suppression) fails tier-1 directly.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var out, errw bytes.Buffer
	if exit := run(nil, &out, &errw); exit != 0 {
		t.Errorf("reachvet found violations:\n%s%s", out.String(), errw.String())
	}
}
