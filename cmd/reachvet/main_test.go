package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errw bytes.Buffer
	if exit := run([]string{"-list"}, &out, &errw); exit != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", exit, errw.String())
	}
	for _, name := range []string{"clockusage", "lockdiscipline", "rawatomics", "couplingtable", "errsink"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errw bytes.Buffer
	if exit := run([]string{"-only", "nonesuch"}, &out, &errw); exit != 2 {
		t.Fatalf("exit = %d, want 2", exit)
	}
	if !strings.Contains(errw.String(), `unknown analyzer "nonesuch"`) {
		t.Errorf("missing diagnostic:\n%s", errw.String())
	}
}

// TestModuleIsClean runs the full suite over this repository — the
// same invariant `make lint` enforces, kept inside `go test ./...` so
// a finding (or an unjustified suppression) fails tier-1 directly.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var out, errw bytes.Buffer
	if exit := run(nil, &out, &errw); exit != 0 {
		t.Errorf("reachvet found violations:\n%s%s", out.String(), errw.String())
	}
}
