package reach

// Benchmarks, one family per experiment in DESIGN.md's index. The
// cmd/reachbench harness regenerates the same tables with wall-clock
// sweeps; these benches give per-op numbers under the testing.B
// machinery. Fixtures come from internal/bench so both stay in sync.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/bench"
	"repro/internal/eca"
	"repro/internal/event"
	"repro/internal/layered"
	"repro/internal/oodb"
	"repro/internal/storage"
)

// --- T1: Table 1 ---

func BenchmarkTable1Admission(b *testing.B) {
	if bad := bench.VerifyTable1(); len(bad) > 0 {
		b.Fatalf("Table 1 mismatch: %v", bad)
	}
	cats := eca.Categories()
	modes := eca.Couplings()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cats {
			for _, m := range modes {
				_ = eca.Supported(c, m)
			}
		}
	}
}

// --- F2: the ECA message flow of Figure 2, end to end per op ---

func BenchmarkFigure2Flow(b *testing.B) {
	f := bench.NewFixture(true, eca.Options{})
	defer f.Close()
	comp := &algebra.Composite{
		Name: "flow",
		Expr: algebra.Seq{Exprs: []algebra.Expr{
			algebra.Prim{Key: bench.SensorPingAfter()},
			algebra.Prim{Key: bench.SensorResetAfter()},
		}},
		Policy: algebra.Chronicle,
		Scope:  algebra.ScopeTransaction,
	}
	if err := f.Engine.DefineComposite(comp); err != nil {
		b.Fatal(err)
	}
	f.Engine.AddRule(&eca.Rule{
		Name: "imm", EventKey: bench.SensorPingAfter(), ActionMode: eca.Immediate,
		Action: func(*eca.RuleCtx) error { return nil },
	})
	f.Engine.AddRule(&eca.Rule{
		Name: "def", EventKey: comp.Key(), ActionMode: eca.Deferred,
		Action: func(*eca.RuleCtx) error { return nil },
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := f.DB.Begin()
		f.DB.Invoke(tx, f.Sensor, "ping", int64(i))
		f.DB.Invoke(tx, f.Sensor, "reset")
		tx.Commit()
	}
}

// --- E1: sentry overhead classes ---

func BenchmarkSentryOverhead(b *testing.B) {
	run := func(name string, f *bench.Fixture) {
		b.Run(name, func(b *testing.B) {
			defer f.Close()
			tx := f.DB.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.DB.Invoke(tx, f.Sensor, "ping", int64(i))
			}
			b.StopTimer()
			tx.Commit()
		})
	}
	run("unmonitored", bench.NewFixture(false, eca.Options{}))

	useless := bench.NewFixture(true, eca.Options{})
	run("useless", useless)

	pot := bench.NewFixture(true, eca.Options{})
	pot.AddNoopRules(1, eca.Immediate)
	pot.Engine.Dispatcher().SetEnabled(bench.SensorPingAfter(), false)
	run("potentially-useful", pot)

	useful := bench.NewFixture(true, eca.Options{})
	useful.AddNoopRules(1, eca.Immediate)
	run("useful", useful)
}

// --- E2: layered vs integrated ---

func BenchmarkLayeredVsIntegratedMethod(b *testing.B) {
	b.Run("integrated", func(b *testing.B) {
		f := bench.NewFixture(true, eca.Options{})
		defer f.Close()
		f.AddNoopRules(1, eca.Immediate)
		tx := f.DB.Begin()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.DB.Invoke(tx, f.Sensor, "ping", int64(i))
		}
		b.StopTimer()
		tx.Commit()
	})
	b.Run("layered-wrapper", func(b *testing.B) {
		lf := bench.NewLayeredFixture()
		defer lf.Close()
		lf.Layer.AddRule(&layered.Rule{
			Name: "r", EventKey: bench.SensorPingAfter(),
			Action: func(*layered.RuleCtx) error { return nil },
		})
		ft := lf.Closed.Begin()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lf.Layer.Invoke(ft, lf.Sensor, "ping", int64(i))
		}
		b.StopTimer()
		ft.Commit()
	})
}

func BenchmarkLayeredVsIntegratedStateChange(b *testing.B) {
	for _, tracked := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("integrated/monitored=%d", tracked), func(b *testing.B) {
			f := bench.NewFixture(true, eca.Options{})
			defer f.Close()
			f.Engine.AddRule(&eca.Rule{
				Name:       "watch",
				EventKey:   event.StateSpec{Class: "Sensor", Attr: "val"}.Key(),
				ActionMode: eca.Immediate,
				Action:     func(*eca.RuleCtx) error { return nil },
			})
			tx := f.DB.Begin()
			objs := make([]*oodb.Object, tracked)
			for i := range objs {
				objs[i], _ = f.DB.NewObject(tx, "Sensor")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.DB.Set(tx, objs[i%tracked], "val", int64(i))
			}
			b.StopTimer()
			tx.Commit()
		})
		b.Run(fmt.Sprintf("layered-poll/tracked=%d", tracked), func(b *testing.B) {
			lf := bench.NewLayeredFixture()
			defer lf.Close()
			lf.Layer.AddRule(&layered.Rule{
				Name: "watch", EventKey: event.StateSpec{Class: "Sensor", Attr: "val"}.Key(),
				Action: func(*layered.RuleCtx) error { return nil },
			})
			ft := lf.Closed.Begin()
			objs := make([]*oodb.Object, tracked)
			for i := range objs {
				objs[i], _ = lf.Closed.NewObject(ft, "Sensor")
				lf.Layer.Track(ft, objs[i])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lf.Closed.Set(ft, objs[i%tracked], "val", int64(i))
				lf.Layer.Poll(ft)
			}
			b.StopTimer()
			ft.Commit()
		})
	}
}

// --- E3: sequential vs parallel rule execution ---

func BenchmarkRuleExecSeqVsPar(b *testing.B) {
	for _, work := range []int{1, 64, 512} {
		for _, strat := range []struct {
			name string
			s    eca.ExecStrategy
		}{{"sequential", eca.SequentialExec}, {"parallel", eca.ParallelExec}} {
			b.Run(fmt.Sprintf("work=%d/%s", work, strat.name), func(b *testing.B) {
				f := bench.NewFixture(true, eca.Options{Exec: strat.s})
				defer f.Close()
				f.AddBusyRules(4, work)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f.Ping(int64(i))
				}
			})
		}
	}
}

// --- E4: sync vs async composition (application-path latency) ---

func BenchmarkCompositionSyncVsAsync(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		for _, mode := range []struct {
			name string
			sync bool
		}{{"async", false}, {"sync", true}} {
			b.Run(fmt.Sprintf("composites=%d/%s", k, mode.name), func(b *testing.B) {
				f := bench.NewFixture(true, eca.Options{
					SyncComposition: mode.sync,
					ComposerBuffer:  4096,
				})
				defer f.Close()
				f.DefineDeepComposites(k, 8)
				b.ResetTimer()
				// Chunked so validity GC bounds the chronicle queues
				// (the life-span discipline of §3.3); without it the
				// match scans grow quadratically with b.N.
				const chunk = 2048
				for done := 0; done < b.N; done += chunk {
					n := chunk
					if b.N-done < n {
						n = b.N - done
					}
					f.PingN(n)
					b.StopTimer()
					f.Engine.DrainComposers()
					f.Clock.Advance(2 * time.Hour)
					f.Engine.GCExpired()
					b.StartTimer()
				}
				b.StopTimer()
				f.Engine.DrainComposers()
			})
		}
	}
}

// --- E5: the immediate-composite stall ---

func BenchmarkImmediateCompositeStall(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("composites=%d/deferred", k), func(b *testing.B) {
			f := bench.NewFixture(true, eca.Options{})
			defer f.Close()
			f.DefineSeqComposites(k, algebra.ScopeTransaction)
			for i := 0; i < k; i++ {
				f.Engine.AddRule(&eca.Rule{
					Name:       fmt.Sprintf("d%d", i),
					EventKey:   event.CompositeSpec{Name: fmt.Sprintf("pair-%d", i)}.Key(),
					ActionMode: eca.Deferred,
					Action:     func(*eca.RuleCtx) error { return nil },
				})
			}
			b.ResetTimer()
			f.PingN(b.N)
		})
		b.Run(fmt.Sprintf("composites=%d/immediate-stall", k), func(b *testing.B) {
			f := bench.NewFixture(true, eca.Options{AllowUnsafeImmediateComposite: true})
			defer f.Close()
			f.DefineSeqComposites(k, algebra.ScopeTransaction)
			for i := 0; i < k; i++ {
				f.Engine.AddRule(&eca.Rule{
					Name:       fmt.Sprintf("i%d", i),
					EventKey:   event.CompositeSpec{Name: fmt.Sprintf("pair-%d", i)}.Key(),
					ActionMode: eca.Immediate,
					Action:     func(*eca.RuleCtx) error { return nil },
				})
			}
			b.ResetTimer()
			f.PingN(b.N)
		})
	}
}

// --- E6: consumption policies ---

func BenchmarkConsumptionPolicy(b *testing.B) {
	for _, pol := range []algebra.Policy{algebra.Recent, algebra.Chronicle, algebra.Continuous, algebra.Cumulative} {
		b.Run(pol.String(), func(b *testing.B) {
			comp := &algebra.Composite{
				Name:   "pair",
				Expr:   algebra.Seq{Exprs: []algebra.Expr{algebra.Prim{Key: "E1"}, algebra.Prim{Key: "E2"}}},
				Policy: pol,
				Scope:  algebra.ScopeGlobal, Validity: time.Hour,
			}
			cp, err := algebra.NewComposer(comp)
			if err != nil {
				b.Fatal(err)
			}
			detected := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := "E1"
				if i%3 == 2 {
					key = "E2"
				}
				in := &event.Instance{SpecKey: key, Seq: uint64(i + 1), Txn: 1,
					Time: bench.Epoch.Add(time.Duration(i))}
				detected += len(cp.Feed(in))
				// Bound semi-composed state, as a life-span would
				// (§3.3): chronicle otherwise accumulates unconsumed
				// initiators and the match scan turns quadratic.
				if i%4096 == 4095 {
					cp.Flush(bench.Epoch.Add(time.Duration(i)))
				}
			}
			b.ReportMetric(float64(detected)/float64(b.N), "detected/op")
		})
	}
}

// --- E7: life-span GC ---

func BenchmarkLifespanGC(b *testing.B) {
	b.Run("txn-scoped-flush", func(b *testing.B) {
		f := bench.NewFixture(true, eca.Options{})
		defer f.Close()
		f.DefineSeqComposites(1, algebra.ScopeTransaction)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.PingN(4) // half-composed sequences discarded at EOT
		}
		b.StopTimer()
		f.Engine.DrainComposers()
		if p := f.Engine.SemiComposed(); p != 0 {
			b.Fatalf("semi-composed leak: %d", p)
		}
	})
	b.Run("global-validity-gc", func(b *testing.B) {
		f := bench.NewFixture(true, eca.Options{})
		defer f.Close()
		f.DefineSeqComposites(1, algebra.ScopeGlobal)
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			f.PingN(4)
			f.Clock.Advance(2 * time.Hour)
			f.Engine.DrainComposers()
			total += f.Engine.GCExpired()
		}
		b.ReportMetric(float64(total)/float64(b.N), "gced/op")
	})
}

// --- E8: composer topology ---

func BenchmarkComposerTopology(b *testing.B) {
	const k = 16
	b.Run("many-small-composers", func(b *testing.B) {
		f := bench.NewFixture(true, eca.Options{ComposerBuffer: 4096})
		defer f.Close()
		f.DefineSeqComposites(k, algebra.ScopeGlobal)
		b.ResetTimer()
		f.PingN(b.N)
		f.Engine.DrainComposers()
	})
	b.Run("monolithic-graph", func(b *testing.B) {
		f := bench.NewFixture(true, eca.Options{ComposerBuffer: 4096})
		defer f.Close()
		subs := make([]algebra.Expr, k)
		for i := range subs {
			subs[i] = algebra.Seq{Exprs: []algebra.Expr{
				algebra.Prim{Key: bench.SensorPingAfter()},
				algebra.Prim{Key: bench.SensorResetAfter()},
			}}
		}
		if err := f.Engine.DefineComposite(&algebra.Composite{
			Name: "mono", Expr: algebra.Disj{Exprs: subs},
			Policy: algebra.Chronicle, Scope: algebra.ScopeGlobal, Validity: time.Hour,
		}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		f.PingN(b.N)
		f.Engine.DrainComposers()
	})
}

// --- E9: event histories ---

func BenchmarkEventHistory(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    eca.HistoryMode
	}{{"distributed", eca.DistributedHistory}, {"central", eca.CentralHistory}} {
		b.Run(mode.name, func(b *testing.B) {
			f := bench.NewFixture(true, eca.Options{History: mode.m})
			defer f.Close()
			f.AddNoopRules(1, eca.Immediate)
			b.RunParallel(func(pb *testing.PB) {
				tx := f.DB.Begin()
				defer tx.Commit()
				i := int64(0)
				for pb.Next() {
					i++
					f.DB.Invoke(tx, f.Sensor, "ping", i)
				}
			})
		})
	}
}

// --- E10: rule dispatch ---

func BenchmarkRuleDispatch(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("rules=%d/eca-managers", n), func(b *testing.B) {
			f := bench.NewFixture(true, eca.Options{})
			defer f.Close()
			for i := 0; i < n-1; i++ {
				f.Engine.AddRule(&eca.Rule{
					Name: fmt.Sprintf("o%d", i), EventKey: fmt.Sprintf("method:O%d.m:after", i),
					ActionMode: eca.Immediate, Action: func(*eca.RuleCtx) error { return nil },
				})
			}
			f.AddNoopRules(1, eca.Immediate)
			tx := f.DB.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.DB.Invoke(tx, f.Sensor, "ping", int64(i))
			}
			b.StopTimer()
			tx.Commit()
		})
		b.Run(fmt.Sprintf("rules=%d/global-scan", n), func(b *testing.B) {
			f := bench.NewFixture(true, eca.Options{})
			defer f.Close()
			for i := 0; i < n-1; i++ {
				f.Engine.AddRule(&eca.Rule{
					Name: fmt.Sprintf("f%d", i), EventKey: bench.SensorPingAfter(),
					ActionMode: eca.Immediate,
					Cond:       func(*eca.RuleCtx) (bool, error) { return false, nil },
					Action:     func(*eca.RuleCtx) error { return nil },
				})
			}
			f.AddNoopRules(1, eca.Immediate)
			tx := f.DB.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.DB.Invoke(tx, f.Sensor, "ping", int64(i))
			}
			b.StopTimer()
			tx.Commit()
		})
	}
}

// --- E11: nested transactions ---

func BenchmarkNestedTxn(b *testing.B) {
	b.Run("flat", func(b *testing.B) {
		f := bench.NewFixture(false, eca.Options{})
		defer f.Close()
		tx := f.DB.Begin()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.DB.Invoke(tx, f.Sensor, "ping", int64(i))
		}
		b.StopTimer()
		tx.Commit()
	})
	b.Run("subtransaction-per-op", func(b *testing.B) {
		f := bench.NewFixture(false, eca.Options{})
		defer f.Close()
		tx := f.DB.Begin()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			child, _ := tx.BeginChild()
			f.DB.Invoke(child, f.Sensor, "ping", int64(i))
			child.Commit()
		}
		b.StopTimer()
		tx.Commit()
	})
}

// --- E12: storage substrate ---

func BenchmarkStorageInsert(b *testing.B) {
	dir := b.TempDir()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	payload := make([]byte, 128)
	st.Begin(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Insert(1, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st.Commit(1)
}

func BenchmarkStorageCommitSync(b *testing.B) {
	dir := b.TempDir()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := uint64(i + 1)
		st.Begin(tid)
		st.Insert(tid, payload)
		if err := st.Commit(tid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageGet(b *testing.B) {
	dir := b.TempDir()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	payload := make([]byte, 128)
	st.Begin(1)
	var rids []storage.RID
	for i := 0; i < 1000; i++ {
		rid, _ := st.Insert(1, payload)
		rids = append(rids, rid)
	}
	st.Commit(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Get(rids[i%len(rids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjectFlushCommit(b *testing.B) {
	dir := b.TempDir()
	db, err := oodb.Open(oodb.Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	cls := oodb.NewClass("Rec", oodb.Attr{Name: "v", Type: oodb.TInt})
	db.Dictionary().Register(cls)
	setup := db.Begin()
	obj, _ := db.NewObject(setup, "Rec")
	db.SetRoot(setup, "r", obj)
	setup.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		db.Set(tx, obj, "v", int64(i))
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
