GO ?= go

.PHONY: build test race vet lint crash all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the REACH-specific analyzers (reachvet) over the module
# and the semantic rule-language pass (rulec -vet) over every shipped
# rule file. Both exit nonzero on findings.
lint:
	$(GO) run ./cmd/reachvet
	$(GO) run ./cmd/rulec -vet examples/*/rules/*.rules

# crash runs the crash-consistency matrix (every workload crashed at
# every write/fsync boundary, clean and WAL-torn, with second crashes
# during recovery) plus a short fuzz of the WAL record decoder.
crash:
	$(GO) test ./internal/fault/... -run 'TestCrashMatrix|TestHarnessCatchesLostCommit' -count=1
	$(GO) test ./internal/storage -run FuzzReadRecord -fuzz FuzzReadRecord -fuzztime 10s
