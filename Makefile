GO ?= go

# BENCH is the committed perf-trajectory baseline: the highest-numbered
# BENCH_*.json in the repo, so a PR that commits a new baseline is
# automatically diffed against it (no stale pin to hand-bump).
BENCH ?= $(shell ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1)
BENCH_N ?= 2000
BENCH_TOLERANCE ?= 1.0
SOAK ?= 60s

.PHONY: build test race vet lint analyze crash stress soak bench bench-diff all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 120s ./...

race:
	$(GO) test -race -timeout 120s ./...

vet:
	$(GO) vet ./...

# lint runs the REACH-specific analyzers (reachvet) over the module
# and the semantic rule-language pass (rulec -vet) over every shipped
# rule file. Both exit nonzero on findings.
lint:
	$(GO) run ./cmd/reachvet
	$(GO) run ./cmd/rulec -vet examples/*/rules/*.rules

# analyze runs the whole-ruleset interaction analysis (triggering
# graph, termination, confluence, reachability) over every shipped
# rule file, failing on unsuppressed errors, and confirms the
# justified-suppression fixture stays accepted.
analyze:
	$(GO) run ./cmd/rulec -analyze examples/*/rules/*.rules
	$(GO) run ./cmd/rulec -analyze cmd/rulec/testdata/cycle_suppressed.rules

# bench regenerates the perf-trajectory baseline in place. bench-diff
# re-measures into a scratch file and compares it against the committed
# baseline, failing on ns/op regressions beyond BENCH_TOLERANCE (the CI
# default is generous — shared runners are noisy; tighten locally).
bench:
	$(GO) run ./cmd/reachbench -n $(BENCH_N) -json $(BENCH) > /dev/null

bench-diff:
	mkdir -p $(CURDIR)/.bench
	$(GO) run ./cmd/reachbench -n $(BENCH_N) -json $(CURDIR)/.bench/bench-current.json > /dev/null
	$(GO) run ./cmd/reachbench -diff -tolerance $(BENCH_TOLERANCE) $(BENCH) $(CURDIR)/.bench/bench-current.json

# crash runs the crash-consistency matrix (every workload — including
# the fuzzy-checkpoint and rotation scripts — crashed at every
# write/fsync boundary, clean and WAL-torn, with second crashes during
# recovery), the checkpoint-site fault-injection sweep, and a short
# fuzz of the WAL record decoder.
crash:
	$(GO) test -timeout 120s ./internal/fault/... -run 'TestCrashMatrix|TestHarnessCatchesLostCommit' -count=1
	$(GO) test -timeout 120s ./internal/storage -run 'TestCheckpointFailureSites|TestCheckpointRepeatedFailure' -count=1
	$(GO) test -timeout 120s ./internal/storage -run FuzzReadRecord -fuzz FuzzReadRecord -fuzztime 10s

# stress hammers the supervised rule executor under the race detector:
# mixed panicking/deadlocking/failing rules, WAL fault injection armed,
# plus the Drain/WaitDetached race and crash-consistency invariants, in
# short mode so the whole target stays CI-sized. The storage leg
# asserts the WAL-growth bound: segment chains stay short under
# sustained traffic with checkpoints.
stress:
	$(GO) test -race -short -timeout 120s -count=1 \
		-run 'TestExecutorStress|TestDrainWaitDetachedRace|TestDetachedRuleFaultInjection|TestDetachedDeadlockRetry' \
		./internal/eca
	$(GO) test -race -timeout 120s -count=1 \
		-run 'TestWALGrowthBounded|TestStoreCheckpointWithActiveTxn|TestBackgroundCheckpointer' \
		./internal/storage

# soak runs the fault-armed overload soak under the race detector:
# writers hammer a slow detached rule through the governor's full
# degradation ladder while chaos waves break the checkpointer and
# escalate synthetic load, asserting forward progress, bounded memory,
# recovery to healthy, and a clean graceful shutdown. SOAK sets the
# duration (default 60s); CI runs the 5s short-mode variant.
soak:
	REACH_SOAK=$(SOAK) $(GO) test -race -timeout 600s -count=1 \
		-run TestOverloadSoak -v ./internal/core
