GO ?= go

.PHONY: build test race vet lint crash stress all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 120s ./...

race:
	$(GO) test -race -timeout 120s ./...

vet:
	$(GO) vet ./...

# lint runs the REACH-specific analyzers (reachvet) over the module
# and the semantic rule-language pass (rulec -vet) over every shipped
# rule file. Both exit nonzero on findings.
lint:
	$(GO) run ./cmd/reachvet
	$(GO) run ./cmd/rulec -vet examples/*/rules/*.rules

# crash runs the crash-consistency matrix (every workload crashed at
# every write/fsync boundary, clean and WAL-torn, with second crashes
# during recovery) plus a short fuzz of the WAL record decoder.
crash:
	$(GO) test -timeout 120s ./internal/fault/... -run 'TestCrashMatrix|TestHarnessCatchesLostCommit' -count=1
	$(GO) test -timeout 120s ./internal/storage -run FuzzReadRecord -fuzz FuzzReadRecord -fuzztime 10s

# stress hammers the supervised rule executor under the race detector:
# mixed panicking/deadlocking/failing rules, WAL fault injection armed,
# plus the Drain/WaitDetached race and crash-consistency invariants, in
# short mode so the whole target stays CI-sized.
stress:
	$(GO) test -race -short -timeout 120s -count=1 \
		-run 'TestExecutorStress|TestDrainWaitDetachedRace|TestDetachedRuleFaultInjection|TestDetachedDeadlockRetry' \
		./internal/eca
