GO ?= go

.PHONY: build test race vet all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
