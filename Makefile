GO ?= go

.PHONY: build test race vet lint all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the REACH-specific analyzers (reachvet) over the module
# and the semantic rule-language pass (rulec -vet) over every shipped
# rule file. Both exit nonzero on findings.
lint:
	$(GO) run ./cmd/reachvet
	$(GO) run ./cmd/rulec -vet examples/*/rules/*.rules
